//! Versioned binary trace serialisation.
//!
//! Traces are captured once and replayed into the simulator, mirroring the
//! paper's trace-driven methodology (their traces were collected ahead of
//! time from Alpha binaries).  Two formats share the `PSTR` magic:
//!
//! * **v1** — the original fixed-width little-endian record stream behind a
//!   12-byte header.  Kept readable (and writable via [`write_trace`]) so
//!   existing traces and the compatibility tests keep working, but it has
//!   no integrity checking and no embedded identity.
//! * **v2** — the shipping format: a self-describing header (profile name,
//!   workload/exec seeds, instruction count, chunk size, header CRC-32)
//!   followed by chunked records, each chunk carrying its own CRC-32.  The
//!   chunking is what makes the format *streamable*: [`TraceWriter`] emits
//!   and [`TraceReader`] consumes one bounded chunk at a time, so a
//!   multi-hundred-MB trace records and replays at constant memory instead
//!   of materialising a `Vec<DynInst>`.
//!
//! ```text
//! v2 layout (all little-endian):
//!   magic          [u8; 4]   "PSTR"
//!   version        u32       2
//!   profile_len    u16       <= 256
//!   profile        [u8; profile_len]   UTF-8 benchmark name
//!   workload_seed  u64
//!   exec_seed      u64
//!   count          u64       total records in the file
//!   chunk_insts    u32       records per full chunk, 1..=1048576
//!   header_crc     u32       CRC-32 (IEEE) of every preceding header byte
//!   -- then, until `count` records have been carried --
//!   n_records      u32       records in this chunk, 1..=chunk_insts
//!   payload_len    u32       encoded byte length of this chunk
//!   payload        [u8; payload_len]
//!   payload_crc    u32       CRC-32 of `payload`
//! ```
//!
//! Decode errors always name the offending field ("chunk 3 CRC mismatch",
//! "trace truncated reading workload_seed"), never just "bad data": a
//! corrupt multi-GB trace must be diagnosable from the message alone.
//!
//! No external serialisation crates are needed and round-trips are exact:
//! re-recording the same `(profile, workload seed, exec seed, count)` is
//! byte-identical, which is what the committed `specs/trace_smoke.pstr`
//! golden fixture asserts.

use crate::codegen::Workload;
use crate::exec::{DynInst, TraceGenerator};
use prestage_isa::{BlockId, OpClass};
use std::fs::File;
use std::io::{self, BufReader, Read, Seek, SeekFrom, Write};
use std::path::Path;

/// Magic bytes identifying a trace file.
pub const MAGIC: [u8; 4] = *b"PSTR";
/// Current format version (the chunked, CRC-checked layout above).
pub const VERSION: u32 = 2;
/// The legacy headerless-record format still accepted by [`TraceReader`].
pub const VERSION_V1: u32 = 1;
/// Records per chunk when the caller does not choose ([`TraceWriter::new`]).
pub const DEFAULT_CHUNK_INSTS: u32 = 4096;
/// Upper bound on a header's declared chunk size: caps the per-chunk buffer
/// a hostile header can make the reader allocate (1 Mi records ≈ 32 MB).
pub const MAX_CHUNK_INSTS: u32 = 1 << 20;
/// Upper bound on the profile-name field.
const MAX_PROFILE_LEN: usize = 256;
/// Encoded record size bounds (24 bytes, +8 when a memory address rides).
const MIN_REC_BYTES: usize = 24;
const MAX_REC_BYTES: usize = 32;

// ---------------------------------------------------------------------------
// CRC-32 (IEEE 802.3, the zlib/PNG polynomial), slice-by-8 so chunk
// verification stays far off the replay critical path.
// ---------------------------------------------------------------------------

const fn crc_tables() -> [[u32; 256]; 8] {
    let mut t = [[0u32; 256]; 8];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 { 0xEDB8_8320 ^ (c >> 1) } else { c >> 1 };
            k += 1;
        }
        t[0][i] = c;
        i += 1;
    }
    let mut j = 1;
    while j < 8 {
        let mut i = 0;
        while i < 256 {
            let prev = t[j - 1][i];
            t[j][i] = (prev >> 8) ^ t[0][(prev & 0xFF) as usize];
            i += 1;
        }
        j += 1;
    }
    t
}

static CRC_TABLES: [[u32; 256]; 8] = crc_tables();

/// CRC-32 of `data` (IEEE; `crc32(b"123456789") == 0xCBF4_3926`).  Public
/// so conformance tests and external tools can re-derive section CRCs.
pub fn crc32(data: &[u8]) -> u32 {
    let t = &CRC_TABLES;
    let mut crc = !0u32;
    let mut rest = data;
    while rest.len() >= 8 {
        let one = u32::from_le_bytes([rest[0], rest[1], rest[2], rest[3]]) ^ crc;
        let two = u32::from_le_bytes([rest[4], rest[5], rest[6], rest[7]]);
        crc = t[7][(one & 0xFF) as usize]
            ^ t[6][((one >> 8) & 0xFF) as usize]
            ^ t[5][((one >> 16) & 0xFF) as usize]
            ^ t[4][(one >> 24) as usize]
            ^ t[3][(two & 0xFF) as usize]
            ^ t[2][((two >> 8) & 0xFF) as usize]
            ^ t[1][((two >> 16) & 0xFF) as usize]
            ^ t[0][(two >> 24) as usize];
        rest = &rest[8..];
    }
    for &b in rest {
        crc = t[0][((crc ^ b as u32) & 0xFF) as usize] ^ (crc >> 8);
    }
    !crc
}

// ---------------------------------------------------------------------------
// Record codec (shared by v1 and v2).
// ---------------------------------------------------------------------------

fn op_to_u8(op: OpClass) -> u8 {
    match op {
        OpClass::IntAlu => 0,
        OpClass::IntMul => 1,
        OpClass::FpAlu => 2,
        OpClass::FpMul => 3,
        OpClass::Load => 4,
        OpClass::Store => 5,
        OpClass::CondBranch => 6,
        OpClass::Jump => 7,
        OpClass::Call => 8,
        OpClass::Return => 9,
    }
}

fn op_from_u8(x: u8) -> Result<OpClass, String> {
    Ok(match x {
        0 => OpClass::IntAlu,
        1 => OpClass::IntMul,
        2 => OpClass::FpAlu,
        3 => OpClass::FpMul,
        4 => OpClass::Load,
        5 => OpClass::Store,
        6 => OpClass::CondBranch,
        7 => OpClass::Jump,
        8 => OpClass::Call,
        9 => OpClass::Return,
        other => return Err(format!("bad opclass byte {other}")),
    })
}

fn encode_inst(out: &mut Vec<u8>, i: &DynInst) {
    out.extend_from_slice(&i.pc.to_le_bytes());
    out.push(op_to_u8(i.op));
    out.extend_from_slice(&i.block.0.to_le_bytes());
    out.extend_from_slice(&i.idx.to_le_bytes());
    let flags = i.taken as u8 | (i.mem_addr.is_some() as u8) << 1;
    out.push(flags);
    out.extend_from_slice(&i.next_pc.to_le_bytes());
    if let Some(m) = i.mem_addr {
        out.extend_from_slice(&m.to_le_bytes());
    }
}

/// Decode one record from `buf` at `*pos`, advancing `*pos`.  String errors
/// name the failing part; the caller adds file-level context (chunk/record
/// indices).
///
/// This is the replay hot path: the happy case does one bounds check for
/// the 24-byte fixed part (and one more for an optional memory address);
/// the named per-field diagnosis only runs once something already failed.
fn decode_inst(buf: &[u8], pos: &mut usize) -> Result<DynInst, String> {
    let p = *pos;
    let Some(head) = buf.get(p..p + MIN_REC_BYTES) else {
        return Err(diagnose_short_record(buf.len() - p.min(buf.len())));
    };
    let le_u64 =
        |s: &[u8]| u64::from_le_bytes(<[u8; 8]>::try_from(s).expect("8 bytes"));
    let op = op_from_u8(head[8])?;
    let flags = head[15];
    if flags & !3 != 0 {
        return Err(format!("bad flags byte {flags:#04x}"));
    }
    let mem_addr = if flags & 2 != 0 {
        let Some(m) = buf.get(p + MIN_REC_BYTES..p + MAX_REC_BYTES) else {
            return Err("payload ends inside memory address".into());
        };
        *pos = p + MAX_REC_BYTES;
        Some(le_u64(m))
    } else {
        *pos = p + MIN_REC_BYTES;
        None
    };
    Ok(DynInst {
        pc: le_u64(&head[0..8]),
        op,
        block: BlockId(u32::from_le_bytes(head[9..13].try_into().expect("4 bytes"))),
        idx: u16::from_le_bytes(head[13..15].try_into().expect("2 bytes")),
        taken: flags & 1 != 0,
        next_pc: le_u64(&head[16..24]),
        mem_addr,
    })
}

/// Name the field a record with only `have` bytes left dies in.
fn diagnose_short_record(have: usize) -> String {
    let field = match have {
        0..=7 => "pc",
        8 => "opclass",
        9..=12 => "block id",
        13..=14 => "block index",
        15 => "flags",
        _ => "next pc",
    };
    format!("payload ends inside {field}")
}

// ---------------------------------------------------------------------------
// Header.
// ---------------------------------------------------------------------------

/// The identity a v2 trace carries: which benchmark it was recorded from
/// and under which seeds — everything a replay consumer must match before
/// trusting the file.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceMeta {
    /// Benchmark profile name ("gzip", "mcf", ...).
    pub profile: String,
    /// Seed the static program was generated from.
    pub workload_seed: u64,
    /// Seed the dynamic execution ran under.
    pub exec_seed: u64,
}

/// Parsed trace header, either version.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceHeader {
    /// 1 or 2.
    pub version: u32,
    /// Total records in the file.
    pub count: u64,
    /// Records per full chunk (0 for v1, which is unchunked).
    pub chunk_insts: u32,
    /// Embedded identity; `None` for v1 traces, which carry none.
    pub meta: Option<TraceMeta>,
}

fn invalid(msg: String) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg)
}

/// `read_exact` that names the field a truncated input died in.
fn read_field<const N: usize>(r: &mut impl Read, what: &str) -> io::Result<[u8; N]> {
    let mut buf = [0u8; N];
    r.read_exact(&mut buf).map_err(|e| {
        if e.kind() == io::ErrorKind::UnexpectedEof {
            invalid(format!("trace truncated reading {what}"))
        } else {
            e
        }
    })?;
    Ok(buf)
}

/// The exact v2 header bytes for `(meta, count, chunk_insts)` — CRC
/// included.  One builder so the writer's initial header, its finish-time
/// patch, and the golden-fixture test can never disagree.
fn header_bytes(meta: &TraceMeta, count: u64, chunk_insts: u32) -> Vec<u8> {
    let mut h = Vec::with_capacity(38 + meta.profile.len());
    h.extend_from_slice(&MAGIC);
    h.extend_from_slice(&VERSION.to_le_bytes());
    h.extend_from_slice(&(meta.profile.len() as u16).to_le_bytes());
    h.extend_from_slice(meta.profile.as_bytes());
    h.extend_from_slice(&meta.workload_seed.to_le_bytes());
    h.extend_from_slice(&meta.exec_seed.to_le_bytes());
    h.extend_from_slice(&count.to_le_bytes());
    h.extend_from_slice(&chunk_insts.to_le_bytes());
    let crc = crc32(&h);
    h.extend_from_slice(&crc.to_le_bytes());
    h
}

// ---------------------------------------------------------------------------
// Streaming writer.
// ---------------------------------------------------------------------------

/// Streaming v2 trace writer: push records one at a time; full chunks are
/// flushed as they fill, so memory stays bounded by one chunk regardless of
/// trace length.  The header is written up front with a zero count and
/// patched (via `Seek`) by [`finish`](Self::finish), so the producer never
/// needs to know the record count in advance.
#[derive(Debug)]
pub struct TraceWriter<W: Write + Seek> {
    w: W,
    meta: TraceMeta,
    chunk_insts: u32,
    chunk: Vec<u8>,
    chunk_records: u32,
    count: u64,
}

impl<W: Write + Seek> TraceWriter<W> {
    /// Start a trace with the default chunk size.
    pub fn new(w: W, meta: TraceMeta) -> io::Result<Self> {
        Self::with_chunk_insts(w, meta, DEFAULT_CHUNK_INSTS)
    }

    /// Start a trace with an explicit records-per-chunk granularity
    /// (`1..=`[`MAX_CHUNK_INSTS`]; smaller chunks = finer corruption
    /// localisation, larger = less framing overhead).
    pub fn with_chunk_insts(mut w: W, meta: TraceMeta, chunk_insts: u32) -> io::Result<Self> {
        if chunk_insts == 0 || chunk_insts > MAX_CHUNK_INSTS {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                format!("chunk size {chunk_insts} outside 1..={MAX_CHUNK_INSTS}"),
            ));
        }
        if meta.profile.len() > MAX_PROFILE_LEN {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                format!(
                    "profile name is {} bytes, above the {MAX_PROFILE_LEN}-byte cap",
                    meta.profile.len()
                ),
            ));
        }
        w.write_all(&header_bytes(&meta, 0, chunk_insts))?;
        Ok(TraceWriter {
            w,
            meta,
            chunk_insts,
            chunk: Vec::with_capacity(chunk_insts as usize * MAX_REC_BYTES),
            chunk_records: 0,
            count: 0,
        })
    }

    /// Append one record.
    pub fn push(&mut self, i: &DynInst) -> io::Result<()> {
        encode_inst(&mut self.chunk, i);
        self.chunk_records += 1;
        self.count += 1;
        if self.chunk_records == self.chunk_insts {
            self.flush_chunk()?;
        }
        Ok(())
    }

    /// Append a slice of records.
    pub fn push_all(&mut self, insts: &[DynInst]) -> io::Result<()> {
        for i in insts {
            self.push(i)?;
        }
        Ok(())
    }

    fn flush_chunk(&mut self) -> io::Result<()> {
        if self.chunk_records == 0 {
            return Ok(());
        }
        self.w.write_all(&self.chunk_records.to_le_bytes())?;
        self.w.write_all(&(self.chunk.len() as u32).to_le_bytes())?;
        self.w.write_all(&self.chunk)?;
        self.w.write_all(&crc32(&self.chunk).to_le_bytes())?;
        self.chunk.clear();
        self.chunk_records = 0;
        Ok(())
    }

    /// Flush the final partial chunk, patch the header's record count, and
    /// return the total count.  A writer that is dropped without `finish`
    /// leaves a header claiming zero records — unreadable as data, never
    /// silently short.
    pub fn finish(mut self) -> io::Result<u64> {
        self.flush_chunk()?;
        self.w.seek(SeekFrom::Start(0))?;
        self.w
            .write_all(&header_bytes(&self.meta, self.count, self.chunk_insts))?;
        self.w.flush()?;
        Ok(self.count)
    }
}

// ---------------------------------------------------------------------------
// Streaming reader.
// ---------------------------------------------------------------------------

/// Streaming trace reader: an `Iterator<Item = io::Result<DynInst>>` over
/// either format, decoding (and CRC-verifying, for v2) one chunk at a time
/// at constant memory — the payload and record buffers are reused across
/// chunks, so a multi-GB trace replays with two bounded allocations.
/// After the first error the iterator fuses.
#[derive(Debug)]
pub struct TraceReader<R: Read> {
    r: R,
    header: TraceHeader,
    /// Records handed to the consumer so far.
    produced: u64,
    /// Decoded records of the current chunk (reused) and the drain cursor.
    chunk: Vec<DynInst>,
    chunk_pos: usize,
    /// Raw payload buffer, reused across chunks.
    payload: Vec<u8>,
    chunks_read: u64,
    verify_chunks: bool,
    failed: bool,
    trailing_checked: bool,
}

impl<R: Read> TraceReader<R> {
    /// Parse the header (v1 or v2) and position the reader at the first
    /// record.  v2 headers are CRC-verified here; chunk payloads as they
    /// stream.
    pub fn new(r: R) -> io::Result<Self> {
        Self::with_verification(r, true)
    }

    /// A reader that skips per-chunk payload-CRC *recomputation* (all
    /// structural checks remain).  For consumers that already verified the
    /// file this process — `run_spec_cells` vets every trace end-to-end
    /// once, then fans out to per-cell readers; re-hashing the same bytes
    /// in every cell would be pure overhead on the sweep's hot path.
    pub fn trusted(r: R) -> io::Result<Self> {
        Self::with_verification(r, false)
    }

    fn with_verification(mut r: R, verify_chunks: bool) -> io::Result<Self> {
        let magic = read_field::<4>(&mut r, "magic")?;
        if magic != MAGIC {
            return Err(invalid(format!("bad magic {magic:02x?} (not a PSTR trace)")));
        }
        let version = u32::from_le_bytes(read_field::<4>(&mut r, "version")?);
        let header = match version {
            VERSION_V1 => TraceHeader {
                version,
                count: u64::from_le_bytes(read_field::<8>(&mut r, "record count")?),
                chunk_insts: 0,
                meta: None,
            },
            VERSION => {
                let mut hb = Vec::with_capacity(64);
                hb.extend_from_slice(&MAGIC);
                hb.extend_from_slice(&version.to_le_bytes());
                let plen_b = read_field::<2>(&mut r, "profile length")?;
                hb.extend_from_slice(&plen_b);
                let plen = u16::from_le_bytes(plen_b) as usize;
                if plen > MAX_PROFILE_LEN {
                    return Err(invalid(format!(
                        "profile length {plen} exceeds the {MAX_PROFILE_LEN}-byte cap"
                    )));
                }
                let mut pbytes = vec![0u8; plen];
                r.read_exact(&mut pbytes).map_err(|e| {
                    if e.kind() == io::ErrorKind::UnexpectedEof {
                        invalid("trace truncated reading profile name".into())
                    } else {
                        e
                    }
                })?;
                hb.extend_from_slice(&pbytes);
                let profile = String::from_utf8(pbytes)
                    .map_err(|_| invalid("profile name is not valid UTF-8".into()))?;
                let wseed_b = read_field::<8>(&mut r, "workload_seed")?;
                let xseed_b = read_field::<8>(&mut r, "exec_seed")?;
                let count_b = read_field::<8>(&mut r, "instruction count")?;
                let chunk_b = read_field::<4>(&mut r, "chunk size")?;
                hb.extend_from_slice(&wseed_b);
                hb.extend_from_slice(&xseed_b);
                hb.extend_from_slice(&count_b);
                hb.extend_from_slice(&chunk_b);
                let chunk_insts = u32::from_le_bytes(chunk_b);
                if chunk_insts == 0 || chunk_insts > MAX_CHUNK_INSTS {
                    return Err(invalid(format!(
                        "chunk size {chunk_insts} outside 1..={MAX_CHUNK_INSTS}"
                    )));
                }
                let stored = u32::from_le_bytes(read_field::<4>(&mut r, "header CRC")?);
                let computed = crc32(&hb);
                if stored != computed {
                    return Err(invalid(format!(
                        "header CRC mismatch (stored {stored:#010x}, computed {computed:#010x})"
                    )));
                }
                TraceHeader {
                    version,
                    count: u64::from_le_bytes(count_b),
                    chunk_insts,
                    meta: Some(TraceMeta {
                        profile,
                        workload_seed: u64::from_le_bytes(wseed_b),
                        exec_seed: u64::from_le_bytes(xseed_b),
                    }),
                }
            }
            other => {
                return Err(invalid(format!(
                    "unsupported trace version {other} (this build reads v1 and v2)"
                )))
            }
        };
        Ok(TraceReader {
            r,
            header,
            produced: 0,
            chunk: Vec::new(),
            chunk_pos: 0,
            payload: Vec::new(),
            chunks_read: 0,
            verify_chunks,
            failed: false,
            trailing_checked: false,
        })
    }

    pub fn header(&self) -> &TraceHeader {
        &self.header
    }

    /// Chunks decoded so far (diagnostics; v1 always 0).
    pub fn chunks_read(&self) -> u64 {
        self.chunks_read
    }

    /// Decode the next v2 chunk into `self.chunk`.
    fn read_chunk(&mut self) -> io::Result<()> {
        let k = self.chunks_read;
        let n = u32::from_le_bytes(read_field::<4>(
            &mut self.r,
            &format!("chunk {k} record count"),
        )?);
        if n == 0 || n > self.header.chunk_insts {
            return Err(invalid(format!(
                "chunk {k} claims {n} records, outside 1..={} (the header's chunk size)",
                self.header.chunk_insts
            )));
        }
        let remaining = self.header.count - self.produced;
        if n as u64 > remaining {
            return Err(invalid(format!(
                "chunk {k} claims {n} records but only {remaining} remain of the header's {}",
                self.header.count
            )));
        }
        let plen = u32::from_le_bytes(read_field::<4>(
            &mut self.r,
            &format!("chunk {k} payload length"),
        )?) as usize;
        if plen < n as usize * MIN_REC_BYTES || plen > n as usize * MAX_REC_BYTES {
            return Err(invalid(format!(
                "chunk {k} payload length {plen} is impossible for {n} records \
                 ({MIN_REC_BYTES}-{MAX_REC_BYTES} bytes each)"
            )));
        }
        if self.payload.len() < plen {
            self.payload.resize(plen, 0);
        }
        let payload = &mut self.payload[..plen];
        self.r.read_exact(payload).map_err(|e| {
            if e.kind() == io::ErrorKind::UnexpectedEof {
                invalid(format!("trace truncated reading chunk {k} payload ({plen} bytes)"))
            } else {
                e
            }
        })?;
        let stored = u32::from_le_bytes(read_field::<4>(&mut self.r, &format!("chunk {k} CRC"))?);
        if self.verify_chunks {
            let computed = crc32(payload);
            if stored != computed {
                return Err(invalid(format!(
                    "chunk {k} CRC mismatch (stored {stored:#010x}, computed {computed:#010x})"
                )));
            }
        }
        let mut pos = 0usize;
        self.chunk.clear();
        self.chunk.reserve(n as usize);
        for j in 0..n {
            self.chunk.push(
                decode_inst(payload, &mut pos)
                    .map_err(|e| invalid(format!("chunk {k} record {j}: {e}")))?,
            );
        }
        if pos != plen {
            return Err(invalid(format!(
                "chunk {k} payload has {} trailing bytes after its {n} records",
                plen - pos
            )));
        }
        self.chunk_pos = 0;
        self.chunks_read += 1;
        Ok(())
    }

    /// One v1 record straight off the reader.
    fn read_v1_record(&mut self) -> io::Result<DynInst> {
        // Large enough for the widest record; decode_inst bounds the reads.
        let what = format!(
            "record {} of the header's {}",
            self.produced, self.header.count
        );
        let mut head = [0u8; MIN_REC_BYTES];
        self.r.read_exact(&mut head).map_err(|e| {
            if e.kind() == io::ErrorKind::UnexpectedEof {
                invalid(format!("trace truncated reading {what}"))
            } else {
                e
            }
        })?;
        // Peek the flags byte (offset 15) to learn whether a memory address
        // follows, then decode the full record from one buffer.
        let mut buf = head.to_vec();
        if head[15] & 2 != 0 {
            let tail = read_field::<8>(&mut self.r, &what)?;
            buf.extend_from_slice(&tail);
        }
        let mut pos = 0;
        let inst = decode_inst(&buf, &mut pos).map_err(|e| invalid(format!("{what}: {e}")))?;
        debug_assert_eq!(pos, buf.len());
        Ok(inst)
    }

    fn next_record(&mut self) -> Option<io::Result<DynInst>> {
        if self.failed {
            return None;
        }
        if self.produced == self.header.count {
            // v2 forbids trailing garbage: a concatenated or padded file is
            // corruption, not silence.  (v1 stays permissive, as it always
            // was.)
            if self.header.version == VERSION && !self.trailing_checked {
                self.trailing_checked = true;
                let mut one = [0u8; 1];
                match self.r.read(&mut one) {
                    Ok(0) => {}
                    Ok(_) => {
                        self.failed = true;
                        return Some(Err(invalid(
                            "trailing data after the final chunk".into(),
                        )));
                    }
                    Err(e) => {
                        self.failed = true;
                        return Some(Err(e));
                    }
                }
            }
            return None;
        }
        if self.header.version != VERSION_V1 {
            // Fast path: drain the decoded chunk without re-entering the
            // framing logic per record.
            if let Some(&i) = self.chunk.get(self.chunk_pos) {
                self.chunk_pos += 1;
                self.produced += 1;
                return Some(Ok(i));
            }
            if let Err(e) = self.read_chunk() {
                self.failed = true;
                return Some(Err(e));
            }
            self.chunk_pos = 1;
            self.produced += 1;
            return Some(Ok(self.chunk[0]));
        }
        match self.read_v1_record() {
            Ok(i) => {
                self.produced += 1;
                Some(Ok(i))
            }
            Err(e) => {
                self.failed = true;
                Some(Err(e))
            }
        }
    }
}

impl<R: Read> Iterator for TraceReader<R> {
    type Item = io::Result<DynInst>;

    fn next(&mut self) -> Option<io::Result<DynInst>> {
        self.next_record()
    }
}

/// Open a trace file for streaming (buffered reads, header parsed).
pub fn open_trace(path: &Path) -> io::Result<TraceReader<BufReader<File>>> {
    let f = File::open(path)
        .map_err(|e| io::Error::new(e.kind(), format!("open trace {}: {e}", path.display())))?;
    TraceReader::new(BufReader::new(f))
}

// ---------------------------------------------------------------------------
// Whole-slice convenience API.
// ---------------------------------------------------------------------------

/// Write a trace in the **v1** format — kept for compatibility (and the
/// v1→v2 read-compatibility tests); new traces should go through
/// [`TraceWriter`] / [`record_trace`], which carry identity and CRCs.
pub fn write_trace<W: Write>(mut w: W, insts: &[DynInst]) -> io::Result<()> {
    w.write_all(&MAGIC)?;
    w.write_all(&VERSION_V1.to_le_bytes())?;
    w.write_all(&(insts.len() as u64).to_le_bytes())?;
    let mut buf = Vec::with_capacity(MAX_REC_BYTES);
    for i in insts {
        buf.clear();
        encode_inst(&mut buf, i);
        w.write_all(&buf)?;
    }
    Ok(())
}

/// Read a whole trace (either version) into memory.
///
/// The header's `count` field is untrusted: preallocation is clamped to a
/// small constant and the vector only grows as records actually decode, so
/// a hostile header claiming 2^60 records fails on its missing bytes
/// instead of driving a giant allocation first.
pub fn read_trace<R: Read>(r: R) -> io::Result<Vec<DynInst>> {
    let reader = TraceReader::new(r)?;
    let mut out = Vec::with_capacity(reader.header().count.min(4096) as usize);
    for rec in reader {
        out.push(rec?);
    }
    Ok(out)
}

/// Record exactly `n_insts` instructions of `(workload, exec_seed)` into a
/// v2 trace.  Deterministic and *exact*: the same arguments always produce
/// byte-identical output (the golden-fixture property), so the final stream
/// may be cut mid-way — replay consumers never reach it because recordings
/// carry run-ahead slack (see `ExperimentSpec::trace_record_insts`).
pub fn record_trace<W: Write + Seek>(
    out: W,
    w: &Workload,
    exec_seed: u64,
    n_insts: u64,
    chunk_insts: u32,
) -> io::Result<u64> {
    let meta = TraceMeta {
        profile: w.profile.name.to_string(),
        workload_seed: w.seed,
        exec_seed,
    };
    let mut tw = TraceWriter::with_chunk_insts(out, meta, chunk_insts)?;
    let mut gen = TraceGenerator::new(w, exec_seed);
    let mut buf = Vec::new();
    let mut written = 0u64;
    while written < n_insts {
        gen.next_stream(&mut buf);
        for i in &buf {
            if written == n_insts {
                break;
            }
            tw.push(i)?;
            written += 1;
        }
    }
    tw.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::codegen::build;
    use crate::exec::TraceGenerator;
    use crate::profile::by_name;
    use std::io::Cursor;

    fn small_insts(n: u64) -> Vec<DynInst> {
        let mut p = by_name("bzip2").unwrap();
        p.i_footprint_kb = 2;
        p.n_funcs = 6;
        let w = build(&p, 4);
        let mut t = TraceGenerator::new(&w, 4);
        t.take_insts(n)
    }

    fn meta() -> TraceMeta {
        TraceMeta {
            profile: "bzip2".into(),
            workload_seed: 4,
            exec_seed: 4,
        }
    }

    fn v2_bytes(insts: &[DynInst], chunk: u32) -> Vec<u8> {
        let mut buf = Cursor::new(Vec::new());
        let mut w = TraceWriter::with_chunk_insts(&mut buf, meta(), chunk).unwrap();
        w.push_all(insts).unwrap();
        let n = w.finish().unwrap();
        assert_eq!(n, insts.len() as u64);
        buf.into_inner()
    }

    #[test]
    fn crc32_matches_the_standard_check_value() {
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
        // Slice-by-8 path (>= 8 bytes) agrees with the bytewise tail path.
        let long: Vec<u8> = (0..=255u8).cycle().take(1000).collect();
        let bytewise = {
            let mut c = !0u32;
            for &b in &long {
                c = CRC_TABLES[0][((c ^ b as u32) & 0xFF) as usize] ^ (c >> 8);
            }
            !c
        };
        assert_eq!(crc32(&long), bytewise);
    }

    #[test]
    fn v1_roundtrip_exact() {
        let insts = small_insts(10_000);
        let mut buf = Vec::new();
        write_trace(&mut buf, &insts).unwrap();
        assert_eq!(read_trace(&buf[..]).unwrap(), insts);
    }

    #[test]
    fn v2_roundtrip_exact_across_chunk_sizes() {
        let insts = small_insts(5_000);
        for chunk in [1u32, 7, 512, DEFAULT_CHUNK_INSTS] {
            let bytes = v2_bytes(&insts, chunk);
            let back = read_trace(&bytes[..]).unwrap();
            assert_eq!(back, insts, "chunk size {chunk}");
        }
    }

    #[test]
    fn v2_header_self_describes() {
        let insts = small_insts(100);
        let bytes = v2_bytes(&insts, 32);
        let r = TraceReader::new(&bytes[..]).unwrap();
        let h = r.header().clone();
        assert_eq!(h.version, VERSION);
        assert_eq!(h.count, insts.len() as u64);
        assert_eq!(h.chunk_insts, 32);
        assert_eq!(h.meta, Some(meta()));
        let n = r.fold(0usize, |acc, x| {
            x.unwrap();
            acc + 1
        });
        assert_eq!(n, insts.len());
    }

    #[test]
    fn v2_recording_is_byte_deterministic() {
        let mut p = by_name("mcf").unwrap();
        p.i_footprint_kb = 2;
        p.n_funcs = 6;
        let w = build(&p, 9);
        let mut a = Cursor::new(Vec::new());
        let mut b = Cursor::new(Vec::new());
        record_trace(&mut a, &w, 3, 2_000, 256).unwrap();
        record_trace(&mut b, &w, 3, 2_000, 256).unwrap();
        assert_eq!(a.into_inner(), b.into_inner());
    }

    #[test]
    fn rejects_bad_magic() {
        let buf = b"NOPE00000000".to_vec();
        let e = read_trace(&buf[..]).unwrap_err();
        assert!(e.to_string().contains("magic"), "{e}");
    }

    #[test]
    fn rejects_bad_version() {
        let mut buf = Vec::new();
        write_trace(&mut buf, &[]).unwrap();
        buf[4] = 99;
        let e = read_trace(&buf[..]).unwrap_err();
        assert!(e.to_string().contains("version 99"), "{e}");
    }

    #[test]
    fn rejects_truncation_either_version() {
        let insts = small_insts(100);
        let mut v1 = Vec::new();
        write_trace(&mut v1, &insts).unwrap();
        v1.truncate(v1.len() - 3);
        let e = read_trace(&v1[..]).unwrap_err();
        assert!(e.to_string().contains("truncated"), "{e}");

        let mut v2 = v2_bytes(&insts, 64);
        v2.truncate(v2.len() - 3);
        let e = read_trace(&v2[..]).unwrap_err();
        assert!(e.to_string().contains("truncated") || e.to_string().contains("CRC"), "{e}");
    }

    #[test]
    fn rejects_chunk_crc_corruption_by_chunk_index() {
        let insts = small_insts(600);
        let bytes = v2_bytes(&insts, 256);
        // Flip one payload byte in the *second* chunk: header is
        // header_bytes(...) long; chunk 0 is 4+4+payload+4.
        let hlen = header_bytes(&meta(), 0, 256).len();
        let c0_plen =
            u32::from_le_bytes(bytes[hlen + 4..hlen + 8].try_into().unwrap()) as usize;
        let c1_payload = hlen + 8 + c0_plen + 4 + 8;
        let mut bad = bytes.clone();
        bad[c1_payload + 10] ^= 0xFF;
        let e = read_trace(&bad[..]).unwrap_err();
        assert!(e.to_string().contains("chunk 1 CRC mismatch"), "{e}");
        // The first chunk still decodes: the reader fails mid-stream, not
        // up front.
        let mut r = TraceReader::new(&bad[..]).unwrap();
        for _ in 0..256 {
            r.next().unwrap().unwrap();
        }
        assert!(r.next().unwrap().is_err());
        assert!(r.next().is_none(), "reader fuses after an error");
    }

    #[test]
    fn rejects_trailing_garbage_after_final_chunk() {
        let insts = small_insts(50);
        let mut bytes = v2_bytes(&insts, 64);
        bytes.push(0xAB);
        let e = read_trace(&bytes[..]).unwrap_err();
        assert!(e.to_string().contains("trailing data"), "{e}");
    }

    #[test]
    fn hostile_count_fails_fast_without_preallocating() {
        // v1 header claiming 2^60 records over an empty body: must error on
        // the missing first record, not allocate.
        let mut buf = Vec::new();
        buf.extend_from_slice(&MAGIC);
        buf.extend_from_slice(&VERSION_V1.to_le_bytes());
        buf.extend_from_slice(&(1u64 << 60).to_le_bytes());
        let e = read_trace(&buf[..]).unwrap_err();
        let msg = e.to_string();
        assert!(msg.contains("truncated") && msg.contains("record 0"), "{msg}");
    }

    #[test]
    fn empty_traces_roundtrip_both_versions() {
        let mut v1 = Vec::new();
        write_trace(&mut v1, &[]).unwrap();
        assert_eq!(read_trace(&v1[..]).unwrap(), vec![]);
        let v2 = v2_bytes(&[], 64);
        assert_eq!(read_trace(&v2[..]).unwrap(), vec![]);
    }
}
