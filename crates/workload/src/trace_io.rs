//! Compact binary trace serialisation.
//!
//! Traces can be captured once and replayed into the simulator, mirroring
//! the paper's trace-driven methodology (their traces were collected ahead
//! of time from Alpha binaries).  The format is a fixed-width little-endian
//! record stream with a small header; no external serialisation crates are
//! needed and round-trips are exact.

use crate::exec::DynInst;
use prestage_isa::{BlockId, OpClass};
use std::io::{self, Read, Write};

/// Magic bytes identifying a trace file.
pub const MAGIC: [u8; 4] = *b"PSTR";
/// Current format version.
pub const VERSION: u32 = 1;

fn op_to_u8(op: OpClass) -> u8 {
    match op {
        OpClass::IntAlu => 0,
        OpClass::IntMul => 1,
        OpClass::FpAlu => 2,
        OpClass::FpMul => 3,
        OpClass::Load => 4,
        OpClass::Store => 5,
        OpClass::CondBranch => 6,
        OpClass::Jump => 7,
        OpClass::Call => 8,
        OpClass::Return => 9,
    }
}

fn op_from_u8(x: u8) -> io::Result<OpClass> {
    Ok(match x {
        0 => OpClass::IntAlu,
        1 => OpClass::IntMul,
        2 => OpClass::FpAlu,
        3 => OpClass::FpMul,
        4 => OpClass::Load,
        5 => OpClass::Store,
        6 => OpClass::CondBranch,
        7 => OpClass::Jump,
        8 => OpClass::Call,
        9 => OpClass::Return,
        other => {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("bad opclass byte {other}"),
            ))
        }
    })
}

/// Write a trace (any slice of dynamic instructions) to `w`.
pub fn write_trace<W: Write>(mut w: W, insts: &[DynInst]) -> io::Result<()> {
    w.write_all(&MAGIC)?;
    w.write_all(&VERSION.to_le_bytes())?;
    w.write_all(&(insts.len() as u64).to_le_bytes())?;
    for i in insts {
        w.write_all(&i.pc.to_le_bytes())?;
        w.write_all(&[op_to_u8(i.op)])?;
        w.write_all(&i.block.0.to_le_bytes())?;
        w.write_all(&i.idx.to_le_bytes())?;
        let flags = i.taken as u8 | (i.mem_addr.is_some() as u8) << 1;
        w.write_all(&[flags])?;
        w.write_all(&i.next_pc.to_le_bytes())?;
        if let Some(m) = i.mem_addr {
            w.write_all(&m.to_le_bytes())?;
        }
    }
    Ok(())
}

fn read_exact<const N: usize>(r: &mut impl Read) -> io::Result<[u8; N]> {
    let mut buf = [0u8; N];
    r.read_exact(&mut buf)?;
    Ok(buf)
}

/// Read a trace previously written by [`write_trace`].
pub fn read_trace<R: Read>(mut r: R) -> io::Result<Vec<DynInst>> {
    let magic = read_exact::<4>(&mut r)?;
    if magic != MAGIC {
        return Err(io::Error::new(io::ErrorKind::InvalidData, "bad magic"));
    }
    let version = u32::from_le_bytes(read_exact::<4>(&mut r)?);
    if version != VERSION {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("unsupported trace version {version}"),
        ));
    }
    let count = u64::from_le_bytes(read_exact::<8>(&mut r)?);
    let mut out = Vec::with_capacity(count.min(1 << 24) as usize);
    for _ in 0..count {
        let pc = u64::from_le_bytes(read_exact::<8>(&mut r)?);
        let op = op_from_u8(read_exact::<1>(&mut r)?[0])?;
        let block = BlockId(u32::from_le_bytes(read_exact::<4>(&mut r)?));
        let idx = u16::from_le_bytes(read_exact::<2>(&mut r)?);
        let flags = read_exact::<1>(&mut r)?[0];
        let next_pc = u64::from_le_bytes(read_exact::<8>(&mut r)?);
        let mem_addr = if flags & 2 != 0 {
            Some(u64::from_le_bytes(read_exact::<8>(&mut r)?))
        } else {
            None
        };
        out.push(DynInst {
            pc,
            op,
            block,
            idx,
            taken: flags & 1 != 0,
            next_pc,
            mem_addr,
        });
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::codegen::build;
    use crate::exec::TraceGenerator;
    use crate::profile::by_name;

    #[test]
    fn roundtrip_exact() {
        let mut p = by_name("bzip2").unwrap();
        p.i_footprint_kb = 2;
        p.n_funcs = 6;
        let w = build(&p, 4);
        let mut t = TraceGenerator::new(&w, 4);
        let insts = t.take_insts(10_000);

        let mut buf = Vec::new();
        write_trace(&mut buf, &insts).unwrap();
        let back = read_trace(&buf[..]).unwrap();
        assert_eq!(insts, back);
    }

    #[test]
    fn rejects_bad_magic() {
        let buf = b"NOPE00000000".to_vec();
        assert!(read_trace(&buf[..]).is_err());
    }

    #[test]
    fn rejects_bad_version() {
        let mut buf = Vec::new();
        write_trace(&mut buf, &[]).unwrap();
        buf[4] = 99;
        assert!(read_trace(&buf[..]).is_err());
    }

    #[test]
    fn rejects_truncation() {
        let mut p = by_name("bzip2").unwrap();
        p.i_footprint_kb = 2;
        p.n_funcs = 6;
        let w = build(&p, 4);
        let mut t = TraceGenerator::new(&w, 4);
        let insts = t.take_insts(100);
        let mut buf = Vec::new();
        write_trace(&mut buf, &insts).unwrap();
        buf.truncate(buf.len() - 3);
        assert!(read_trace(&buf[..]).is_err());
    }

    #[test]
    fn empty_trace_roundtrips() {
        let mut buf = Vec::new();
        write_trace(&mut buf, &[]).unwrap();
        assert_eq!(read_trace(&buf[..]).unwrap(), vec![]);
    }
}
