//! The hardware-budget argument of §5.1: how much pipelined I-cache does it
//! take to match CLGP running from a tiny cache budget?
//!
//! Reproduces the paper's "equivalent performance at 6.4X our hardware
//! budget" comparison, including the CACTI area/energy overhead estimates
//! for pipelining that back it up.
//!
//! ```text
//! cargo run --release --example cache_budget
//! ```

use fetch_prestaging::cacti::{
    area_mm2, energy_nj_per_access, latency_cycles, pipelining_area_overhead, CacheGeometry,
};
use fetch_prestaging::prelude::*;
use fetch_prestaging::sim::run_config_over;
use prestage_workload::specint2000;

fn main() {
    let tech = TechNode::T090;
    let workloads: Vec<_> = specint2000()
        .iter()
        .map(|p| workload::build_workload(p, 42))
        .collect();
    let run = |preset, l1| {
        let cfg = SimConfig::preset(preset, tech, l1).with_insts(30_000, 120_000);
        run_config_over(cfg, &workloads, 7).hmean_ipc()
    };

    // CLGP with 1 KB L1 + 512 B L0 + 1 KB pipelined prestage buffer:
    // 2.5 KB of storage in total.
    let clgp = run(ConfigPreset::ClgpL0Pb16, 1 << 10);
    println!("CLGP+L0+PB16, 1KB L1 (2.5KB total budget): HMEAN IPC {clgp:.3}\n");

    println!(
        "{:>6} {:>8} {:>8} {:>9} {:>10} {:>10}",
        "L1", "IPC", "budget", "vs CLGP", "area mm2", "nJ/access"
    );
    for &size in &[1usize << 10, 4 << 10, 16 << 10, 64 << 10] {
        let ipc = run(ConfigPreset::BasePipelined, size);
        let geom = CacheGeometry::new(size, 64, 2, 1);
        let stages = latency_cycles(&geom, tech);
        let area = area_mm2(&geom, tech) * pipelining_area_overhead(stages);
        let energy = energy_nj_per_access(&geom, tech);
        println!(
            "{:>6} {:>8.3} {:>7}x {:>8.1}% {:>10.4} {:>10.4}",
            prestage_bench_size(size),
            ipc,
            size as f64 / 2560.0,
            100.0 * (ipc / clgp - 1.0),
            area,
            energy
        );
    }
    println!(
        "\nA pipelined cache needs several times CLGP's total budget (plus the\n\
         pipelining latch/decode overhead shown) to close the gap — §5.1."
    );
}

fn prestage_bench_size(bytes: usize) -> String {
    if bytes < 1024 {
        format!("{bytes}B")
    } else {
        format!("{}K", bytes / 1024)
    }
}
