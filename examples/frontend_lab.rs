//! Front-end laboratory: drive the decoupled front-end directly (no
//! back-end, no trace) to watch FDP and CLGP manage their buffers on a
//! hand-built instruction stream — the library-as-a-library use case.
//!
//! ```text
//! cargo run --release --example frontend_lab
//! ```

use fetch_prestaging::cache::{L2Config, L2System};
use fetch_prestaging::core::{
    ClgpPrefetcher, Delivery, FdpPrefetcher, FrontEnd, FrontendConfig, InstrPrefetcher,
    NoPrefetcher, PrefetcherKind,
};
use fetch_prestaging::prelude::*;

fn drive<P: InstrPrefetcher>(
    mut fe: FrontEnd<P>,
    l2: &mut L2System,
    blocks: &[(u64, u64, u32)],
) -> (u64, Vec<Delivery>) {
    let mut out = Vec::new();
    let mut pushed = 0usize;
    let mut done_at = 0;
    for now in 0..5_000u64 {
        for c in l2.tick(now) {
            fe.on_completion(&c);
        }
        fe.tick(now, l2, 16, &mut out);
        if pushed < blocks.len() && fe.has_queue_space() {
            let (seq, start, len) = blocks[pushed];
            fe.push_block(seq, start, len);
            pushed += 1;
        }
        let delivered: u32 = out.iter().map(|d| d.count).sum();
        let want: u32 = blocks.iter().map(|&(_, _, n)| n).sum();
        if delivered == want {
            done_at = now;
            break;
        }
    }
    (done_at, out)
}

fn main() {
    let tech = TechNode::T045;
    // A loop body of 3 lines executed 5 times, then an exit path: the
    // signature fetch pattern behind the paper's consumers counter.
    let mut blocks = Vec::new();
    let mut seq = 0;
    for _ in 0..5 {
        blocks.push((seq, 0x10000, 48)); // 3 lines
        seq += 1;
    }
    blocks.push((seq, 0x20000, 16));

    fn run_case<P: InstrPrefetcher>(tech: TechNode, pf: PrefetcherKind, blocks: &[(u64, u64, u32)]) {
        let mut cfg = FrontendConfig::base(tech, 8 << 10);
        cfg.prefetcher = pf;
        if pf != PrefetcherKind::None {
            cfg.pb_entries = 4;
        }
        let fe = FrontEnd::<P>::new(cfg);
        let mut l2 = L2System::new(L2Config::for_node(tech));
        for line in 0..8u64 {
            l2.warm_fill(0x10000 + line * 64);
            l2.warm_fill(0x20000 + line * 64);
        }
        let (done, out) = drive(fe, &mut l2, blocks);
        let by_src = |s| {
            out.iter()
                .filter(|d| d.source == s)
                .map(|d| d.count)
                .sum::<u32>()
        };
        use fetch_prestaging::core::FetchSource::*;
        println!(
            "{:?}: finished at cycle {:>4} | insts from PB {:>3} L1 {:>3} L2 {:>3} Mem {:>3}",
            pf,
            done,
            by_src(PreBuffer),
            by_src(L1),
            by_src(L2),
            by_src(Mem)
        );
    }
    run_case::<NoPrefetcher>(tech, PrefetcherKind::None, &blocks);
    run_case::<FdpPrefetcher>(tech, PrefetcherKind::Fdp, &blocks);
    run_case::<ClgpPrefetcher>(tech, PrefetcherKind::Clgp, &blocks);
    println!(
        "\nCLGP pins the loop's three lines with its consumers counters and\n\
         re-serves them at one cycle; FDP re-fetches them from the multi-cycle\n\
         L1 after migrating them out of the buffer on first use."
    );
}
