//! Quickstart: build a synthetic benchmark, run the no-prefetch baseline
//! and CLGP side by side, and print what the prestage buffer bought.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use fetch_prestaging::prelude::*;

fn main() {
    // A gcc-like workload: big code footprint, the interesting case for
    // instruction prefetching.
    let profile = workload::by_name("gcc").expect("known benchmark");
    let w = workload::build_workload(&profile, 42);
    println!(
        "workload: {} ({} static instructions, {} basic blocks)",
        profile.name,
        w.program.num_insts(),
        w.program.num_blocks()
    );

    let tech = TechNode::T045;
    let l1 = 4 << 10; // 4 KB L1 — multi-cycle at this node (Table 3: 4 cycles)

    for preset in [
        ConfigPreset::Base,
        ConfigPreset::BasePipelined,
        ConfigPreset::FdpL0,
        ConfigPreset::ClgpL0,
    ] {
        let cfg = SimConfig::preset(preset, tech, l1).with_insts(50_000, 200_000);
        let s = Engine::new(cfg, &w, 7).run();
        println!(
            "{:<16} IPC {:.3} | fetch sources: PB {:>5.1}%  L0 {:>5.1}%  L1 {:>5.1}%  L2+ {:>4.1}%",
            preset.label(),
            s.ipc(),
            100.0 * s.front.fetch_share(s.front.fetch_pb),
            100.0 * s.front.fetch_share(s.front.fetch_l0),
            100.0 * s.front.fetch_share(s.front.fetch_l1),
            100.0 * (s.front.fetch_share(s.front.fetch_l2) + s.front.fetch_share(s.front.fetch_mem)),
        );
    }
    println!(
        "\nCLGP serves most fetches from the one-cycle prestage buffer, so the\n\
         multi-cycle L1 hit latency stops mattering — the paper's core result."
    );
}
