//! The motivation of §1/§2.2: the same physical front-end loses IPC as the
//! process shrinks, because cycle time falls faster than SRAM access time —
//! and prestaging buys the loss back.
//!
//! Sweeps the SIA roadmap for a fixed 8 KB L1 machine and prints the L1
//! latency (Table 3 at the paper's nodes) and the resulting IPC with and
//! without CLGP.
//!
//! ```text
//! cargo run --release --example tech_scaling
//! ```

use fetch_prestaging::cacti::{latency_cycles, CacheGeometry};
use fetch_prestaging::prelude::*;
use fetch_prestaging::sim::run_config_over;
use prestage_workload::specint2000;

fn main() {
    let workloads: Vec<_> = specint2000()
        .iter()
        .map(|p| workload::build_workload(p, 42))
        .collect();
    let l1 = 8 << 10;
    let geom = CacheGeometry::new(l1, 64, 2, 1);

    println!(
        "{:<9} {:>7} {:>7} {:>10} {:>10} {:>8}",
        "node", "cyc/ns", "L1 lat", "base IPC", "CLGP IPC", "gain"
    );
    for node in [TechNode::T180, TechNode::T130, TechNode::T090, TechNode::T065, TechNode::T045] {
        let lat = latency_cycles(&geom, node);
        let run = |preset| {
            let cfg = SimConfig::preset(preset, node, l1).with_insts(30_000, 120_000);
            run_config_over(cfg, &workloads, 7).hmean_ipc()
        };
        let base = run(ConfigPreset::Base);
        let clgp = run(ConfigPreset::ClgpL0);
        println!(
            "{:<9} {:>7} {:>7} {:>10.3} {:>10.3} {:>7.1}%",
            node.label(),
            node.cycle_ns(),
            lat,
            base,
            clgp,
            100.0 * (clgp / base - 1.0)
        );
    }
    println!(
        "\nAs the node shrinks the L1 costs more cycles and the baseline sags;\n\
         CLGP's prestage buffer keeps the fetch path at one cycle, so its\n\
         advantage grows with the technology trend — the paper's motivation."
    );
}
