//! One-shot generator for the checked-in corpus and regression inputs.
//! Run from the repo root: `cargo run -p prestage-fuzz --example _gen_corpus`.

use std::fs;
use std::path::Path;

fn main() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"));
    let corpus = root.join("corpus");
    let regressions = root.join("regressions");
    for t in ["json", "spec", "trace", "shard"] {
        fs::create_dir_all(corpus.join(t)).unwrap();
    }
    fs::create_dir_all(regressions.join("spec")).unwrap();
    fs::create_dir_all(regressions.join("shard")).unwrap();

    // Corpus: the repo's real spec files seed both the json and spec targets.
    let specs_dir = root.parent().unwrap().join("specs");
    for entry in fs::read_dir(&specs_dir).unwrap() {
        let path = entry.unwrap().path();
        match path.extension().and_then(|e| e.to_str()) {
            Some("json") => {
                let name = path.file_name().unwrap();
                fs::copy(&path, corpus.join("json").join(name)).unwrap();
                fs::copy(&path, corpus.join("spec").join(name)).unwrap();
            }
            Some("pstr") => {
                let name = path.file_name().unwrap();
                fs::copy(&path, corpus.join("trace").join(name)).unwrap();
            }
            _ => {}
        }
    }

    // Tiny generated traces: one v2 (chunked + CRCs) and one v1 (flat).
    let w = prestage_fuzz::targets::tiny_workload();
    let mut v2 = std::io::Cursor::new(Vec::new());
    prestage_workload::record_trace(&mut v2, &w, 3, 600, 64).unwrap();
    fs::write(corpus.join("trace/tiny-v2.pstr"), v2.into_inner()).unwrap();
    let insts: Vec<_> = prestage_workload::TraceGenerator::new(&w, 3).take_insts(120);
    let mut v1 = Vec::new();
    prestage_workload::write_trace(&mut v1, &insts).unwrap();
    fs::write(corpus.join("trace/tiny-v1.pstr"), v1).unwrap();

    // A real one-cell shard so the shard target's pool holds a document
    // with populated stats, not just the empty built-in.
    let spec = prestage_fuzz::targets::tiny_spec();
    let grid = prestage_sim::CellGrid::from_spec(&spec).unwrap();
    let cells = grid.cells();
    let results = prestage_sim::run_spec_cells(&spec, &cells[..1]).unwrap();
    let shard = prestage_sim::ShardFile {
        spec: spec.clone(),
        start: 0,
        end: 1,
        results,
    };
    fs::write(corpus.join("shard/one-cell.json"), shard.to_json()).unwrap();

    // Regressions: the minimized crashers behind the named unit tests.
    let spec_json = {
        let v = spec.to_json_value();
        v.render()
    };
    fs::write(
        regressions.join("shard/inverted-range.json"),
        format!(
            "{{\"schema\": 3, \"spec\": {spec_json}, \
             \"cells\": {{\"start\": 5, \"end\": 2}}, \"results\": []}}"
        ),
    )
    .unwrap();
    fs::write(
        regressions.join("shard/negative-wall.json"),
        format!(
            "{{\"schema\": 3, \"spec\": {spec_json}, \
             \"cells\": {{\"start\": 0, \"end\": 1}}, \"results\": \
             [{{\"cell\": null, \"stats\": null, \"wall_s\": -1.5}}]}}"
        ),
    )
    .unwrap();
    let mut overflow = spec.clone();
    overflow.warmup_insts = u64::MAX;
    overflow.measure_insts = 2;
    fs::write(
        regressions.join("spec/warmup-measure-overflow.json"),
        overflow.to_json(),
    )
    .unwrap();

    println!("corpus + regressions written under {}", root.display());
}
