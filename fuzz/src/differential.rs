//! The differential driver: random small experiments, checked against the
//! workspace's core equivalence claims.
//!
//! Each generated [`ExperimentSpec`] is run three ways — live in-process,
//! sharded through the serialized [`ShardFile`] wire format and merged,
//! and replayed from a freshly recorded trace — and the three canonical
//! grid artifacts must be **byte-identical**.  Alongside, two standing
//! claims get their own properties: all six prefetch mechanisms are
//! bit-identical when the pre-buffer is disabled by config (a disabled
//! mechanism must be *absent*, not merely quiet), and schema-1/2/3 spec
//! files upgrade to the same canonical schema-4 JSON as their modern
//! equivalents.
//!
//! Determinism: every choice comes from one [`SmallRng`] stream, so a
//! `(n_specs, seed)` pair replays the exact same campaign; any failure
//! message embeds the full spec JSON so it can be re-run by hand.

use prestage_cacti::TechNode;
use prestage_core::{ITlbConfig, InsertionPolicy, PrefetcherKind};
use prestage_json::Json;
use prestage_sim::{
    grid_output, run_spec_cells, try_run_spec, CellGrid, CellResult, ConfigPreset, Engine,
    ExperimentSpec, PredictorKind, ShardFile, SimConfig, TraceSource,
};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::panic::{self, AssertUnwindSafe};
use std::path::PathBuf;

/// Outcome of one differential campaign.
#[derive(Debug)]
pub struct DiffReport {
    /// Random specs that went through the live/shard/replay/upgrade gauntlet.
    pub specs: u64,
    /// Disabled-prefetch mechanism-equivalence configurations checked.
    pub mechanism_checks: u64,
    /// Human-readable property violations (empty on a clean run).
    pub failures: Vec<String>,
}

/// Benchmarks small enough to keep a fuzz-sized run sub-second; the
/// differential properties are about plumbing, not workload breadth.
const BENCHES: &[&str] = &["gzip", "mcf", "crafty"];

/// Draw a random *valid* small spec: 1–2 presets, 1–2 L1 sizes, one
/// benchmark, short run lengths.  Trace stays `None` — the replay
/// property installs the trace itself.  `prefetcher` draws `None` half
/// the time and a uniform mechanism otherwise, so every property also
/// exercises the monomorphized per-mechanism engines (the schema-upgrade
/// property compares against the old schemas' expressible subset).
fn random_small_spec(rng: &mut SmallRng) -> ExperimentSpec {
    let all_presets = ConfigPreset::all();
    let techs = [TechNode::T180, TechNode::T130, TechNode::T090, TechNode::T065, TechNode::T045];
    let sizes = [256usize, 1 << 10, 4 << 10, 16 << 10];
    for _ in 0..20 {
        let n_presets = rng.gen_range(1..=2usize);
        let mut presets = Vec::new();
        while presets.len() < n_presets {
            let p = all_presets[rng.gen_range(0..all_presets.len())];
            if !presets.contains(&p) {
                presets.push(p);
            }
        }
        let n_sizes = rng.gen_range(1..=2usize);
        let mut l1_sizes = Vec::new();
        while l1_sizes.len() < n_sizes {
            let s = sizes[rng.gen_range(0..sizes.len())];
            if !l1_sizes.contains(&s) {
                l1_sizes.push(s);
            }
        }
        let spec = ExperimentSpec {
            presets,
            tech: techs[rng.gen_range(0..techs.len())],
            l1_sizes,
            bench: Some(vec![BENCHES[rng.gen_range(0..BENCHES.len())].to_string()]),
            warmup_insts: rng.gen_range(200..=1_200u64),
            measure_insts: rng.gen_range(500..=3_500u64),
            workload_seed: rng.gen_range(1..=1_000u64),
            exec_seed: rng.gen_range(1..=1_000u64),
            threads: Some(rng.gen_range(1..=3usize)),
            predictor: if rng.gen_bool(0.5) {
                PredictorKind::Stream
            } else {
                PredictorKind::Gshare
            },
            trace: None,
            prefetcher: if rng.gen_bool(0.5) {
                let kinds = PrefetcherKind::all();
                Some(kinds[rng.gen_range(0..kinds.len())])
            } else {
                None
            },
            itlb: if rng.gen_bool(0.5) {
                // Power-of-two sets by construction; pages no smaller than
                // the 64 B line size the validator insists on.
                Some(ITlbConfig {
                    entries: [4usize, 16, 64][rng.gen_range(0..3usize)],
                    assoc: [1usize, 2, 4][rng.gen_range(0..3usize)],
                    page_bytes: [256u64, 1024, 4096][rng.gen_range(0..3usize)],
                    miss_cycles: rng.gen_range(1..=40u64),
                })
            } else {
                None
            },
            insertion: if rng.gen_bool(0.5) {
                let all = InsertionPolicy::all();
                Some(all[rng.gen_range(0..all.len())])
            } else {
                None
            },
        };
        if spec.validate().is_ok() {
            return spec;
        }
    }
    // The axes above are all individually valid, so 20 draws without a
    // valid combination means the generator and validator have diverged.
    panic!("random_small_spec cannot draw a valid spec");
}

/// Run `f` with panics captured as property failures (the differential
/// laws lean on `merge_named`'s internal assertions, which panic).
fn guarded<T>(what: &str, spec_json: &str, f: impl FnOnce() -> Result<T, String>) -> Result<T, String> {
    let hook = panic::take_hook();
    panic::set_hook(Box::new(|_| {}));
    let result = panic::catch_unwind(AssertUnwindSafe(f));
    panic::set_hook(hook);
    match result {
        Ok(Ok(v)) => Ok(v),
        Ok(Err(e)) => Err(format!("{what}: {e}\n  spec: {spec_json}")),
        Err(p) => Err(format!(
            "{what}: panic: {}\n  spec: {spec_json}",
            crate::panic_message(&*p)
        )),
    }
}

/// Property A — **live == shard/merge == replay**, byte-identical.
///
/// * The shard leg splits the cell list at a random point, evaluates the
///   halves in *reverse* order, serializes each half through the
///   [`ShardFile`] wire format (parse-of-render, like a real multi-host
///   run), and merges.
/// * The replay leg records the benchmark's trace to a scratch directory
///   and re-runs the spec with `trace` pointing at it.
fn check_spec_equivalence(
    spec: &ExperimentSpec,
    rng: &mut SmallRng,
    scratch: &PathBuf,
) -> Result<(), String> {
    let spec_json = spec.to_json();

    let live = guarded("live run", &spec_json, || {
        try_run_spec(spec).map(|rows| grid_output(spec, &rows))
    })?;

    // Shard leg.
    let sharded = guarded("shard/merge run", &spec_json, || {
        let grid = CellGrid::from_spec(spec)?;
        let cells = grid.cells();
        let split = rng.gen_range(0..=cells.len());
        let mut results: Vec<CellResult> = Vec::new();
        // Back half first: merge order must not matter.
        for half in [&cells[split..], &cells[..split]] {
            if half.is_empty() {
                continue;
            }
            let start = if half.as_ptr() == cells.as_ptr() { 0 } else { split };
            let shard = ShardFile {
                spec: spec.clone(),
                start,
                end: start + half.len(),
                results: run_spec_cells(spec, half)?,
            };
            // Through the wire format, exactly as `prestage merge` sees it.
            let back = ShardFile::from_json(&shard.to_json())?;
            results.extend(back.results);
        }
        let names = spec.bench_names()?;
        let rows = grid.merge_named(results, &names);
        Ok(grid_output(spec, &rows))
    })?;
    if sharded != live {
        return Err(format!(
            "shard/merge output differs from the live run\n  spec: {spec_json}"
        ));
    }

    // Replay leg.
    let replayed = guarded("replay run", &spec_json, || {
        std::fs::create_dir_all(scratch).map_err(|e| e.to_string())?;
        for name in spec.bench_names()? {
            let profile = prestage_workload::by_name(name).ok_or("unknown benchmark")?;
            let w = prestage_workload::build(&profile, spec.workload_seed);
            let path = scratch.join(TraceSource::file_name(
                name,
                spec.workload_seed,
                spec.exec_seed,
            ));
            let file = std::fs::File::create(&path).map_err(|e| e.to_string())?;
            prestage_workload::record_trace(
                std::io::BufWriter::new(file),
                &w,
                spec.exec_seed,
                spec.trace_record_insts(),
                256,
            )
            .map_err(|e| e.to_string())?;
        }
        let replay_spec = ExperimentSpec {
            trace: Some(TraceSource {
                dir: scratch.display().to_string(),
            }),
            ..spec.clone()
        };
        try_run_spec(&replay_spec).map(|rows| grid_output(&replay_spec, &rows))
    })?;
    if replayed != live {
        return Err(format!(
            "trace-replay output differs from the live run\n  spec: {spec_json}"
        ));
    }
    Ok(())
}

/// Property B — with the pre-buffer disabled by config (`pb_entries = 0`),
/// all six mechanisms must produce bit-identical stats: a mechanism with
/// no buffer to fill must be indistinguishable from `None`.
fn check_disabled_mechanisms(rng: &mut SmallRng) -> Result<(), String> {
    let bench = BENCHES[rng.gen_range(0..BENCHES.len())];
    let mut profile = prestage_workload::by_name(bench).expect("known benchmark");
    profile.i_footprint_kb = profile.i_footprint_kb.min(4);
    profile.n_funcs = profile.n_funcs.min(8);
    let w = prestage_workload::build(&profile, rng.gen_range(1..=1_000u64));

    let presets = ConfigPreset::all();
    let preset = presets[rng.gen_range(0..presets.len())];
    let techs = [TechNode::T090, TechNode::T045];
    let tech = techs[rng.gen_range(0..techs.len())];
    let l1 = [1 << 10, 4 << 10][rng.gen_range(0..2usize)];
    let exec_seed = rng.gen_range(1..=1_000u64);

    let mut baseline = None;
    for kind in PrefetcherKind::all() {
        let mut cfg = SimConfig::preset(preset, tech, l1).with_insts(500, 2_000);
        cfg.frontend.pb_entries = 0;
        cfg.frontend.prefetcher = kind;
        let stats = Engine::new(cfg, &w, exec_seed).run();
        match &baseline {
            None => baseline = Some((kind, stats)),
            Some((k0, s0)) => {
                if stats != *s0 {
                    return Err(format!(
                        "disabled-prefetch divergence: {kind:?} != {k0:?} \
                         ({bench}, {preset:?}, {tech:?}, L1 {l1}B, exec seed {exec_seed})"
                    ));
                }
            }
        }
    }
    Ok(())
}

/// Property C — a schema-1, -2 or -3 rendering of a spec (fields the
/// old schemas lacked stripped, schema number rewritten) must upgrade to
/// the *same* canonical JSON as the modern spec restricted to what the
/// old schema could express: dropping an unexpressible field downgrades
/// the *spec*, so the expectation drops it too (for a `prefetcher: None`
/// spec this degenerates to exact round-tripping, the original property).
fn check_schema_upgrade(spec: &ExperimentSpec) -> Result<(), String> {
    for (schema, dropped) in [
        (1i128, &["trace", "prefetcher", "itlb", "insertion"][..]),
        (2, &["prefetcher", "itlb", "insertion"][..]),
        (3, &["itlb", "insertion"][..]),
    ] {
        let mut expressible = spec.clone();
        if dropped.contains(&"trace") {
            expressible.trace = None;
        }
        if dropped.contains(&"prefetcher") {
            expressible.prefetcher = None;
        }
        if dropped.contains(&"itlb") {
            expressible.itlb = None;
        }
        if dropped.contains(&"insertion") {
            expressible.insertion = None;
        }
        let canon = expressible.to_json();
        let Json::Obj(pairs) = spec.to_json_value() else {
            return Err("spec JSON is not an object".into());
        };
        let old = Json::Obj(
            pairs
                .into_iter()
                .filter(|(k, _)| !dropped.contains(&k.as_str()))
                .map(|(k, v)| {
                    if k == "schema" {
                        (k, Json::Int(schema))
                    } else {
                        (k, v)
                    }
                })
                .collect(),
        );
        let upgraded = ExperimentSpec::from_json(&old.render())
            .map_err(|e| format!("schema-{schema} downgrade does not parse: {e}"))?;
        if upgraded.to_json() != canon {
            return Err(format!(
                "schema-{schema} spec upgrades to different canonical JSON\n  spec: {canon}"
            ));
        }
    }
    Ok(())
}

/// Run the full differential campaign: `n_specs` random specs through
/// properties A and C, and one property-B configuration per spec.
/// `log` receives one progress line per spec (the CLI's live ticker).
pub fn run_differential(
    n_specs: u64,
    seed: u64,
    mut log: impl FnMut(&str),
) -> DiffReport {
    let mut rng = SmallRng::seed_from_u64(seed ^ 0xD1FF_D1FF);
    let mut report = DiffReport {
        specs: 0,
        mechanism_checks: 0,
        failures: Vec::new(),
    };
    let scratch = std::env::temp_dir().join(format!(
        "prestage-fuzz-diff-{}-{seed:x}",
        std::process::id()
    ));
    for i in 0..n_specs {
        let spec = random_small_spec(&mut rng);
        report.specs += 1;
        if let Err(e) = check_spec_equivalence(&spec, &mut rng, &scratch) {
            report.failures.push(e);
        }
        if let Err(e) = check_schema_upgrade(&spec) {
            report.failures.push(e);
        }
        if let Err(e) = check_disabled_mechanisms(&mut rng) {
            report.failures.push(e);
        }
        report.mechanism_checks += 1;
        log(&format!(
            "spec {}/{n_specs}: {} failure(s) so far",
            i + 1,
            report.failures.len()
        ));
    }
    let _ = std::fs::remove_dir_all(&scratch);
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn random_specs_are_deterministic_and_valid() {
        let mut a = SmallRng::seed_from_u64(9);
        let mut b = SmallRng::seed_from_u64(9);
        for _ in 0..25 {
            let sa = random_small_spec(&mut a);
            let sb = random_small_spec(&mut b);
            assert_eq!(sa, sb);
            sa.validate().expect("generator only emits valid specs");
        }
    }

    #[test]
    fn schema_upgrade_holds_for_the_default_spec() {
        check_schema_upgrade(&ExperimentSpec::default()).unwrap();
    }

    #[test]
    fn disabled_mechanisms_agree_once() {
        let mut rng = SmallRng::seed_from_u64(4);
        check_disabled_mechanisms(&mut rng).unwrap();
    }
}
