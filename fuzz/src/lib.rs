//! # prestage-fuzz
//!
//! Deterministic fuzz + differential conformance harness for the
//! workspace's wire formats and six prefetch mechanisms.  Runs
//! fully offline against the vendored shims — the mutation engine is
//! seeded from the vendored `rand` (xoshiro256++), so a `(seed, budget)`
//! pair always replays the exact same inputs.
//!
//! Two pillars:
//!
//! * **Byte-level fuzzers** ([`mod@targets`]) drive structure-aware mutations
//!   of checked-in corpus seeds (`fuzz/corpus/<target>/`) through each
//!   wire-format parser — the JSON tree ([`prestage_json`]), the
//!   experiment-spec codec, the trace v1/v2 reader, the shard-file
//!   loader and the `prestage serve` frame protocol — asserting the
//!   workspace's loud-parsing policy
//!   *adversarially*: no input may panic, loop, or produce unboundedly
//!   more output than it is long, and every rejection must name the
//!   offending field or byte offset.
//! * **A differential driver** ([`differential`]) generates random small
//!   [`prestage_sim::ExperimentSpec`]s and asserts the repo's core
//!   equivalences as executable properties: live == replay == shard/merge
//!   byte-identical artifacts, all six mechanisms bit-identical when the
//!   pre-buffer is disabled by config, and schema-1/2 spec files
//!   upgrading to identical canonical schema-3 JSON.
//!
//! Crashers found during development are checked in under
//! `fuzz/regressions/<target>/` and replayed by `fuzz/tests/` as named
//! unit tests; the `prestage fuzz` CLI subcommand runs the whole harness
//! under a `--budget` bound (see the README's *Fuzzing* section).

pub mod differential;
pub mod mutate;
pub mod targets;

pub use targets::{target_by_name, targets, Outcome, Target};

use rand::rngs::SmallRng;
use rand::SeedableRng;
use std::panic::{self, AssertUnwindSafe};
use std::path::{Path, PathBuf};

/// Seed the CLI and CI use when none is given — fixed so every run of
/// the same build fuzzes the same inputs (no flakes, reproducible
/// crashers).
pub const DEFAULT_SEED: u64 = 0x5EED_F05C;

/// Inputs the byte fuzzers never grow beyond: large enough to cover
/// multi-chunk traces and full grid artifacts, small enough that a
/// quadratic parser corner stays sub-second.
pub const MAX_INPUT: usize = mutate::MAX_INPUT;

/// One input that crashed a target or violated the error convention.
#[derive(Debug, Clone)]
pub struct Crash {
    pub target: &'static str,
    pub input: Vec<u8>,
    pub message: String,
}

/// Outcome of one byte-fuzz campaign against one target.
#[derive(Debug)]
pub struct TargetReport {
    pub target: &'static str,
    /// Inputs executed (corpus seeds + mutations).
    pub executions: u64,
    /// Inputs the parser accepted (and whose round-trip laws held).
    pub accepted: u64,
    /// Inputs rejected with a convention-conforming error.
    pub rejected: u64,
    /// Convention violations and panics, deduplicated by message.
    pub crashes: Vec<Crash>,
}

/// Run one input through a target with panics contained.  Returns
/// `Ok(outcome)` when the target behaved (accepted, or rejected with a
/// conforming error) and `Err(message)` when it panicked or violated the
/// error convention — the latter is what becomes a checked-in crasher.
pub fn check_input(t: &Target, data: &[u8]) -> Result<Outcome, String> {
    // Silence the default hook while probing: a fuzz campaign hits panics
    // by design, and thousands of backtraces would bury the report.
    let hook = panic::take_hook();
    panic::set_hook(Box::new(|_| {}));
    let result = panic::catch_unwind(AssertUnwindSafe(|| (t.run)(data)));
    panic::set_hook(hook);
    match result {
        Ok(r) => r,
        Err(p) => Err(format!("panic: {}", panic_message(&*p))),
    }
}

/// Best-effort text of a caught panic payload.
pub(crate) fn panic_message(p: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = p.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = p.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Fuzz one target for `budget` mutated inputs (after replaying every
/// seed verbatim).  Deterministic for a `(target, seeds, budget, seed)`
/// tuple: the RNG is per-target, and accepted inputs join the mutation
/// pool in execution order.
pub fn fuzz_target(t: &Target, seeds: &[Vec<u8>], budget: u64, seed: u64) -> TargetReport {
    // Derive a per-target stream so adding a target never shifts the
    // inputs another target sees.
    let mut tag: u64 = 0xcbf2_9ce4_8422_2325;
    for b in t.name.bytes() {
        tag = (tag ^ b as u64).wrapping_mul(0x100_0000_01b3);
    }
    let mut rng = SmallRng::seed_from_u64(seed ^ tag);

    let mut report = TargetReport {
        target: t.name,
        executions: 0,
        accepted: 0,
        rejected: 0,
        crashes: Vec::new(),
    };
    let mut pool: Vec<Vec<u8>> = seeds.to_vec();
    if pool.is_empty() {
        pool.push(Vec::new());
    }

    let exec = |data: Vec<u8>, report: &mut TargetReport, pool: &mut Vec<Vec<u8>>| {
        report.executions += 1;
        match check_input(t, &data) {
            Ok(Outcome::Accepted) => {
                report.accepted += 1;
                // Accepted mutants are the interesting frontier: feed them
                // back (bounded, deduplicated) so mutations stack.
                if pool.len() < 256 && !pool.contains(&data) {
                    pool.push(data);
                }
            }
            Ok(Outcome::Rejected) => report.rejected += 1,
            Err(message) => {
                let dedup = message.chars().take(80).collect::<String>();
                if !report
                    .crashes
                    .iter()
                    .any(|c| c.message.chars().take(80).collect::<String>() == dedup)
                    && report.crashes.len() < 16
                {
                    report.crashes.push(Crash {
                        target: t.name,
                        input: data,
                        message,
                    });
                }
            }
        }
    };

    for s in seeds {
        exec(s.clone(), &mut report, &mut pool);
    }
    for _ in 0..budget {
        let input = mutate::mutate(&mut rng, &pool);
        exec(input, &mut report, &mut pool);
    }
    report
}

/// `fuzz/corpus/` as baked into this checkout (the CLI's default).
pub fn default_corpus_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("corpus")
}

/// `fuzz/regressions/` — every file is a past crasher, replayed by the
/// regression tests and re-fuzzed as a seed.
pub fn default_regressions_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("regressions")
}

/// Load one target's seed files from `root/<target>/`, sorted by file
/// name so the campaign is independent of directory iteration order.
/// A missing directory is an empty seed set, not an error.
pub fn load_seeds(root: &Path, target: &str) -> Vec<Vec<u8>> {
    named_inputs(&root.join(target))
        .into_iter()
        .map(|(_, bytes)| bytes)
        .collect()
}

/// `(file name, bytes)` for every regular file directly under `dir`,
/// sorted by name.
pub fn named_inputs(dir: &Path) -> Vec<(String, Vec<u8>)> {
    let Ok(entries) = std::fs::read_dir(dir) else {
        return Vec::new();
    };
    let mut out: Vec<(String, Vec<u8>)> = entries
        .filter_map(|e| {
            let e = e.ok()?;
            if !e.file_type().ok()?.is_file() {
                return None;
            }
            let name = e.file_name().to_string_lossy().into_owned();
            let bytes = std::fs::read(e.path()).ok()?;
            Some((name, bytes))
        })
        .collect();
    out.sort();
    out
}

/// Seeds a target starts from even with no corpus checked out: small
/// valid documents generated in-process, so the mutator always has
/// structure to work with.
pub fn builtin_seeds(target: &str) -> Vec<Vec<u8>> {
    targets::builtin_seeds_for(target)
}

/// A quick deterministic self-check used by the test suite: fuzz every
/// target at `budget` and return the reports (seeded from the corpus if
/// present, built-ins otherwise).
pub fn run_byte_fuzzers(budget: u64, seed: u64, corpus_root: &Path) -> Vec<TargetReport> {
    targets()
        .iter()
        .map(|t| {
            let mut seeds = builtin_seeds(t.name);
            seeds.extend(load_seeds(corpus_root, t.name));
            seeds.extend(load_seeds(&default_regressions_root(), t.name));
            fuzz_target(t, &seeds, budget, seed)
        })
        .collect()
}

/// Derive a short stable content hash for naming crash files.
pub fn input_tag(data: &[u8]) -> String {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in data {
        h = (h ^ b as u64).wrapping_mul(0x100_0000_01b3);
    }
    format!("{h:016x}")
}

/// Convenience used by tests: mutate `n` inputs from `seeds` and return
/// them (exposes the mutator's determinism without running a target).
pub fn sample_mutations(seeds: &[Vec<u8>], n: usize, seed: u64) -> Vec<Vec<u8>> {
    let mut rng = SmallRng::seed_from_u64(seed);
    let pool: Vec<Vec<u8>> = if seeds.is_empty() {
        vec![Vec::new()]
    } else {
        seeds.to_vec()
    };
    (0..n).map(|_| mutate::mutate(&mut rng, &pool)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutator_is_deterministic() {
        let seeds = vec![b"{\"a\": 1}".to_vec(), b"PSTR".to_vec()];
        assert_eq!(
            sample_mutations(&seeds, 50, 7),
            sample_mutations(&seeds, 50, 7)
        );
    }

    #[test]
    fn campaigns_are_deterministic() {
        let t = target_by_name("json").unwrap();
        let seeds = builtin_seeds("json");
        let a = fuzz_target(t, &seeds, 100, 42);
        let b = fuzz_target(t, &seeds, 100, 42);
        assert_eq!(a.executions, b.executions);
        assert_eq!(a.accepted, b.accepted);
        assert_eq!(a.rejected, b.rejected);
        assert_eq!(a.crashes.len(), b.crashes.len());
    }

    #[test]
    fn check_input_contains_panics() {
        // A target that panics on any input must come back as Err, with
        // the process (and the panic hook) intact.
        fn boom(_: &[u8]) -> Result<Outcome, String> {
            panic!("deliberate test panic");
        }
        let t = Target {
            name: "boom",
            run: boom,
        };
        let e = check_input(&t, b"x").unwrap_err();
        assert!(e.contains("deliberate test panic"), "{e}");
    }
}
