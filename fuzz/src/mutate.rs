//! The deterministic structure-aware mutation engine.
//!
//! Classic byte-fuzzer moves (bit flips, truncation, splices) plus
//! format-aware ones: interesting little-endian integers written at
//! aligned-ish offsets (trace length fields), and token insertion drawn
//! from the grammar of the three wire formats (JSON punctuation and spec
//! field names, the `PSTR` magic, hostile numerics).  Everything draws
//! from one caller-owned [`SmallRng`], so a campaign is a pure function
//! of its seed.

use rand::rngs::SmallRng;
use rand::Rng;

/// Upper bound on mutated inputs (see [`crate::MAX_INPUT`]).
pub const MAX_INPUT: usize = 1 << 16;

/// Little-endian integers worth writing over length/count fields: format
/// bounds (24/32-byte records, 2^20-record chunks, the 256-byte profile
/// cap) and the classic overflow sentinels.
const INTERESTING: [u64; 14] = [
    0,
    1,
    2,
    23,
    24,
    32,
    255,
    256,
    257,
    4096,
    (1 << 20) as u64,
    (1 << 20) + 1,
    u32::MAX as u64,
    u64::MAX,
];

/// Grammar fragments of the three wire formats (and a few hostile
/// numerics no format should accept).
const TOKENS: &[&[u8]] = &[
    b"PSTR",
    b"\x02\x00\x00\x00",
    b"\"schema\": 1",
    b"\"schema\": 99",
    b"\"prefetcher\": \"mana\"",
    b"\"trace\": {\"dir\": \"\"}",
    b"\"warmup_insts\": 18446744073709551615",
    b"\"wall_s\": -1.5",
    b"null",
    b"-",
    b"1e309",
    b"5.",
    b"00",
    b"18446744073709551616",
    b"[[[[[[[[[[[[[[[[[[[[",
    b"{\"\":",
    b"\\u0000",
    b"\\ud800",
    b",",
    b"}",
    b"\xff\xff\xff\xff\xff\xff\xff\xff",
];

/// Produce one mutated input: clone a pool entry, stack 1–4 mutations,
/// clamp to [`MAX_INPUT`].
pub fn mutate(rng: &mut SmallRng, pool: &[Vec<u8>]) -> Vec<u8> {
    let mut buf = pool[rng.gen_range(0..pool.len())].clone();
    let n = rng.gen_range(1..=4u32);
    for _ in 0..n {
        apply_one(rng, &mut buf, pool);
    }
    buf.truncate(MAX_INPUT);
    buf
}

fn rand_byte(rng: &mut SmallRng) -> u8 {
    rng.gen_range(0..=255u32) as u8
}

fn apply_one(rng: &mut SmallRng, buf: &mut Vec<u8>, pool: &[Vec<u8>]) {
    if buf.is_empty() {
        // Nothing to mutate in place: grow from a token or a byte.
        if rng.gen_bool(0.5) {
            buf.extend_from_slice(TOKENS[rng.gen_range(0..TOKENS.len())]);
        } else {
            buf.push(rand_byte(rng));
        }
        return;
    }
    let len = buf.len();
    match rng.gen_range(0..9u32) {
        // Flip one bit.
        0 => {
            let i = rng.gen_range(0..len);
            buf[i] ^= 1 << rng.gen_range(0..8u32);
        }
        // Overwrite one byte.
        1 => {
            let i = rng.gen_range(0..len);
            buf[i] = rand_byte(rng);
        }
        // Truncate (mid-record / mid-document cuts).
        2 => {
            buf.truncate(rng.gen_range(0..len));
        }
        // Remove a short range.
        3 => {
            let i = rng.gen_range(0..len);
            let j = (i + 1 + rng.gen_range(0..16usize)).min(len);
            buf.drain(i..j);
        }
        // Insert a few random bytes.
        4 => {
            let at = rng.gen_range(0..=len);
            let n = 1 + rng.gen_range(0..8usize);
            let tail: Vec<u8> = buf.split_off(at);
            for _ in 0..n {
                let b = rand_byte(rng);
                buf.push(b);
            }
            buf.extend_from_slice(&tail);
        }
        // Duplicate an internal slice elsewhere (repeated keys, repeated
        // chunks).
        5 => {
            let i = rng.gen_range(0..len);
            let j = (i + 1 + rng.gen_range(0..64usize)).min(len);
            let slice = buf[i..j].to_vec();
            let at = rng.gen_range(0..=len);
            let tail: Vec<u8> = buf.split_off(at);
            buf.extend_from_slice(&slice);
            buf.extend_from_slice(&tail);
        }
        // Splice with another pool entry (cross-document chimeras).
        6 => {
            let other = &pool[rng.gen_range(0..pool.len())];
            if !other.is_empty() {
                let keep = rng.gen_range(0..=len);
                let from = rng.gen_range(0..other.len());
                buf.truncate(keep);
                buf.extend_from_slice(&other[from..]);
            }
        }
        // Write an interesting little-endian integer over a field-sized
        // window.
        7 => {
            let width = [1usize, 2, 4, 8][rng.gen_range(0..4usize)];
            if len >= width {
                let i = rng.gen_range(0..=len - width);
                let v = INTERESTING[rng.gen_range(0..INTERESTING.len())];
                buf[i..i + width].copy_from_slice(&v.to_le_bytes()[..width]);
            }
        }
        // Insert a grammar token.
        _ => {
            let t = TOKENS[rng.gen_range(0..TOKENS.len())];
            let at = rng.gen_range(0..=len);
            let tail: Vec<u8> = buf.split_off(at);
            buf.extend_from_slice(t);
            buf.extend_from_slice(&tail);
        }
    }
}
