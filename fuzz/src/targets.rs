//! The byte-level fuzz targets: one per wire format.
//!
//! Each target is a total function from arbitrary bytes to
//! [`Outcome`], returning `Err` only when the parser under test breaks a
//! law it ships on:
//!
//! * **No panic** (enforced outside, by [`crate::check_input`]'s
//!   `catch_unwind`) and **no hang** (every parser is single-pass over a
//!   finite buffer).
//! * **No unbounded output**: a parser may not fabricate more decoded
//!   structure than the input could possibly encode (checked explicitly
//!   for the trace reader, whose records have a 24-byte floor; the JSON
//!   tree is structurally bounded by its text).
//! * **Loud rejection**: every error names the offending field or byte
//!   offset — the project-wide loud-parsing policy, here enforced
//!   adversarially over millions of inputs instead of hand-picked
//!   fixtures.
//! * **Round-trip laws on acceptance**: re-rendering an accepted value
//!   and re-parsing it must reproduce the value byte-for-byte (the
//!   canonical-artifact property the shard/merge CI diff rests on).

use prestage_json::Json;
use prestage_sim::spec::ShardFile;
use prestage_sim::ExperimentSpec;
use prestage_workload::TraceReader;

/// What a well-behaved parser did with an input.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Outcome {
    /// Parsed successfully (and every round-trip law held).
    Accepted,
    /// Refused with a convention-conforming error.
    Rejected,
}

/// A named byte-level fuzz target.
pub struct Target {
    pub name: &'static str,
    pub run: fn(&[u8]) -> Result<Outcome, String>,
}

/// All byte-level targets, in reporting order.
pub fn targets() -> &'static [Target] {
    &[
        Target {
            name: "json",
            run: json_target,
        },
        Target {
            name: "spec",
            run: spec_target,
        },
        Target {
            name: "trace",
            run: trace_target,
        },
        Target {
            name: "shard",
            run: shard_target,
        },
        Target {
            name: "frame",
            run: frame_target,
        },
    ]
}

pub fn target_by_name(name: &str) -> Option<&'static Target> {
    targets().iter().find(|t| t.name == name)
}

/// Fields/sites an acceptable *spec* error message may name (superset of
/// the spec schema plus the benchmark/preset vocabularies and the JSON
/// error prefix, which carries a byte offset).
const SPEC_TOKENS: &[&str] = &[
    "JSON error",
    "schema",
    "spec",
    "preset",
    "tech",
    "l1_sizes",
    "L1 size",
    "bench",
    "warmup_insts",
    "measure_insts",
    "workload_seed",
    "exec_seed",
    "threads",
    "predictor",
    "trace",
    "prefetcher",
    "itlb",
    "insertion",
];

/// Fields/sites an acceptable *trace* error may name — the same contract
/// `tests/trace_roundtrip.rs` pins on hand-picked corruptions.
const TRACE_TOKENS: &[&str] = &[
    "magic",
    "version",
    "profile",
    "workload_seed",
    "exec_seed",
    "instruction count",
    "chunk size",
    "header CRC",
    "CRC mismatch",
    "truncated",
    "record count",
    "payload",
    "chunk",
    "record",
    "trailing data",
    "opclass",
    "flags",
];

/// Additional sites a *shard* error may name on top of the spec's.
const SHARD_TOKENS: &[&str] = &["shard", "cells", "results", "cell", "stats", "wall_s"];

/// Sites a *frame* decoding error may name: every [`decode_frame`]
/// rejection carries the header field or byte offset it tripped on.
const FRAME_TOKENS: &[&str] = &[
    "frame",
    "magic",
    "header",
    "payload",
    "byte offset",
    "UTF-8",
    "cap",
    "JSON error",
];

/// Sites a request/response *payload* rejection may name (on top of the
/// spec vocabulary, which a malformed submit body surfaces).
const PROTO_TOKENS: &[&str] = &[
    "field", "request", "response", "type", "sweep", "status", "spec",
];

fn names_a_site(msg: &str, tokens: &[&str]) -> bool {
    tokens.iter().any(|t| msg.contains(t))
}

/// `prestage-json`: parse, then hold the writer to its determinism
/// contract — `render`/`pretty` of an accepted tree must re-parse to the
/// identical tree, and `render` must be a fixpoint.
fn json_target(data: &[u8]) -> Result<Outcome, String> {
    // The parser's domain is `&str`; non-UTF-8 bytes never reach it
    // (every on-disk caller goes through `read_to_string`).
    let Ok(text) = std::str::from_utf8(data) else {
        return Ok(Outcome::Rejected);
    };
    match Json::parse(text) {
        Err(e) => {
            if e.offset > text.len() {
                return Err(format!(
                    "error offset {} lies beyond the {}-byte input",
                    e.offset,
                    text.len()
                ));
            }
            if e.reason.trim().is_empty() {
                return Err("rejection with an empty reason".into());
            }
            Ok(Outcome::Rejected)
        }
        Ok(v) => {
            let canon = v.render();
            let back = Json::parse(&canon)
                .map_err(|e| format!("canonical rendering does not re-parse: {e} in {canon:?}"))?;
            if back != v {
                return Err(format!("render/parse round-trip changed the value: {canon:?}"));
            }
            if back.render() != canon {
                return Err(format!("render is not a fixpoint for {canon:?}"));
            }
            let pretty = v.pretty();
            let back = Json::parse(&pretty)
                .map_err(|e| format!("pretty rendering does not re-parse: {e} in {pretty:?}"))?;
            if back != v {
                return Err(format!("pretty/parse round-trip changed the value: {pretty:?}"));
            }
            Ok(Outcome::Accepted)
        }
    }
}

/// The `ExperimentSpec` codec: strict schema-aware parse; accepted specs
/// must survive the canonical (schema-3) round trip, and `validate()`
/// must return — never panic — on whatever parsed.
fn spec_target(data: &[u8]) -> Result<Outcome, String> {
    let Ok(text) = std::str::from_utf8(data) else {
        return Ok(Outcome::Rejected);
    };
    match ExperimentSpec::from_json(text) {
        Err(e) => {
            if e.trim().is_empty() {
                return Err("spec rejection with an empty reason".into());
            }
            if !names_a_site(&e, SPEC_TOKENS) {
                return Err(format!("spec rejection names no field: {e:?}"));
            }
            Ok(Outcome::Rejected)
        }
        Ok(spec) => {
            let canon = spec.to_json();
            let back = ExperimentSpec::from_json(&canon)
                .map_err(|e| format!("canonical spec does not re-parse: {e}"))?;
            if back != spec {
                return Err("spec round-trip changed a field".into());
            }
            // Whatever parsed must be *checkable* without crashing; the
            // verdict itself is free to go either way.
            if let Err(e) = spec.validate() {
                if e.trim().is_empty() {
                    return Err("validate() rejection with an empty reason".into());
                }
            }
            Ok(Outcome::Accepted)
        }
    }
}

/// The trace v1/v2 reader, streamed to exhaustion.  Every rejection must
/// name a field; the record stream may never outrun what the input bytes
/// could encode (24-byte minimum per record) — the no-unbounded-output
/// law, since decoded records are the reader's only allocation that
/// scales with *claimed* (vs actual) content.
fn trace_target(data: &[u8]) -> Result<Outcome, String> {
    let check = |e: &std::io::Error| -> Result<(), String> {
        let msg = e.to_string();
        if !names_a_site(&msg, TRACE_TOKENS) {
            return Err(format!("trace rejection names no field: {msg:?}"));
        }
        Ok(())
    };
    // Records have a 24-byte floor and the v1 header is 16 bytes, so a
    // clean read can never produce more than len/24 + 1 records.
    let max_records = (data.len() / 24) as u64 + 1;
    match TraceReader::new(data) {
        Err(e) => {
            check(&e)?;
            Ok(Outcome::Rejected)
        }
        Ok(reader) => {
            let mut produced: u64 = 0;
            for rec in reader {
                match rec {
                    Ok(_) => {
                        produced += 1;
                        if produced > max_records {
                            return Err(format!(
                                "reader produced {produced} records from a {}-byte input",
                                data.len()
                            ));
                        }
                    }
                    Err(e) => {
                        check(&e)?;
                        return Ok(Outcome::Rejected);
                    }
                }
            }
            Ok(Outcome::Accepted)
        }
    }
}

/// The shard-file loader (`prestage shard` output / `prestage merge`
/// input): strict parse, named rejections, canonical round trip, and the
/// range/result-count invariants on acceptance.
fn shard_target(data: &[u8]) -> Result<Outcome, String> {
    let Ok(text) = std::str::from_utf8(data) else {
        return Ok(Outcome::Rejected);
    };
    match ShardFile::from_json(text) {
        Err(e) => {
            if e.trim().is_empty() {
                return Err("shard rejection with an empty reason".into());
            }
            if !names_a_site(&e, SPEC_TOKENS) && !names_a_site(&e, SHARD_TOKENS) {
                return Err(format!("shard rejection names no field: {e:?}"));
            }
            Ok(Outcome::Rejected)
        }
        Ok(shard) => {
            if shard.start > shard.end {
                return Err(format!(
                    "accepted an inverted cell range {}..{}",
                    shard.start, shard.end
                ));
            }
            if shard.results.len() != shard.end - shard.start {
                return Err(format!(
                    "accepted range {}..{} with {} results",
                    shard.start,
                    shard.end,
                    shard.results.len()
                ));
            }
            let back = ShardFile::from_json(&shard.to_json())
                .map_err(|e| format!("canonical shard does not re-parse: {e}"))?;
            if back != shard {
                return Err("shard round-trip changed a field".into());
            }
            Ok(Outcome::Accepted)
        }
    }
}

/// The `prestage serve` frame decoder plus the request/response payload
/// grammar: [`decode_frame`](prestage_serve::decode_frame) must be total
/// (named rejection or a decoded value, never a panic), consume no more
/// bytes than it was given, and re-encode/re-decode to the identical
/// value; whatever payload it accepts must be *checkable* as a request
/// and as a response without crashing, with named rejections and
/// canonical round trips on acceptance.
fn frame_target(data: &[u8]) -> Result<Outcome, String> {
    use prestage_serve::{decode_frame, encode_frame, Request, Response, FRAME_HEADER};
    match decode_frame(data) {
        Err(e) => {
            if e.trim().is_empty() {
                return Err("frame rejection with an empty reason".into());
            }
            if !names_a_site(&e, FRAME_TOKENS) {
                return Err(format!("frame rejection names no site: {e:?}"));
            }
            Ok(Outcome::Rejected)
        }
        Ok((v, consumed)) => {
            if consumed < FRAME_HEADER || consumed > data.len() {
                return Err(format!(
                    "decoder claims {consumed} byte(s) consumed of a {}-byte input",
                    data.len()
                ));
            }
            let canon = encode_frame(&v);
            let (back, n) = decode_frame(&canon)
                .map_err(|e| format!("canonical frame does not re-decode: {e}"))?;
            if n != canon.len() {
                return Err(format!(
                    "canonical frame is {} byte(s) but re-decode consumed {n}",
                    canon.len()
                ));
            }
            if back != v {
                return Err("frame round-trip changed the payload".into());
            }
            match Request::from_json(&v) {
                Ok(req) => {
                    let back = Request::from_json(&req.to_json())
                        .map_err(|e| format!("canonical request does not re-parse: {e}"))?;
                    if back != req {
                        return Err("request round-trip changed a field".into());
                    }
                }
                Err(e) => {
                    if e.trim().is_empty() {
                        return Err("request rejection with an empty reason".into());
                    }
                    if !names_a_site(&e, PROTO_TOKENS) && !names_a_site(&e, SPEC_TOKENS) {
                        return Err(format!("request rejection names no field: {e:?}"));
                    }
                }
            }
            match Response::from_json(&v) {
                Ok(resp) => {
                    let back = Response::from_json(&resp.to_json())
                        .map_err(|e| format!("canonical response does not re-parse: {e}"))?;
                    if back != resp {
                        return Err("response round-trip changed a field".into());
                    }
                }
                Err(e) => {
                    if e.trim().is_empty() {
                        return Err("response rejection with an empty reason".into());
                    }
                    if !names_a_site(&e, PROTO_TOKENS) && !names_a_site(&e, SPEC_TOKENS) {
                        return Err(format!("response rejection names no field: {e:?}"));
                    }
                }
            }
            Ok(Outcome::Accepted)
        }
    }
}

/// In-process seeds per target: small valid documents so a campaign has
/// structure to mutate even before the checked-in corpus loads.
pub fn builtin_seeds_for(target: &str) -> Vec<Vec<u8>> {
    match target {
        "json" => vec![
            b"{}".to_vec(),
            b"[0, -1, 2.5, 1e-3, \"s\", null, true, false]".to_vec(),
            b"{\"a\": {\"b\": [1, 2, {\"c\": \"\\n\\u0041\"}]}}".to_vec(),
            b"9223372036854775807".to_vec(),
        ],
        "spec" => vec![
            ExperimentSpec::default().to_json().into_bytes(),
            tiny_spec().to_json().into_bytes(),
        ],
        "trace" => {
            let w = tiny_workload();
            let mut v2 = std::io::Cursor::new(Vec::new());
            prestage_workload::record_trace(&mut v2, &w, 3, 600, 256)
                .expect("in-memory recording");
            let insts: Vec<_> =
                prestage_workload::TraceGenerator::new(&w, 3).take_insts(200);
            let mut v1 = Vec::new();
            prestage_workload::write_trace(&mut v1, &insts).expect("in-memory v1");
            vec![v2.into_inner(), v1]
        }
        "shard" => {
            // An empty-but-valid shard: real stats come from the corpus.
            let shard = ShardFile {
                spec: tiny_spec(),
                start: 0,
                end: 0,
                results: Vec::new(),
            };
            vec![shard.to_json().into_bytes()]
        }
        "frame" => {
            use prestage_serve::{encode_frame, encode_frame_text, Request, Response};
            vec![
                encode_frame(&Request::Ping.to_json()),
                encode_frame(&Request::Submit { spec: tiny_spec() }.to_json()),
                encode_frame(&Request::Status { sweep: None }.to_json()),
                encode_frame(
                    &Request::Fetch {
                        sweep: "00112233445566778899aabbccddeeff".into(),
                    }
                    .to_json(),
                ),
                encode_frame(
                    &Response::Submitted {
                        sweep: "00112233445566778899aabbccddeeff".into(),
                        cells: 8,
                        jobs: 2,
                        cached_cells: 4,
                        complete: false,
                    }
                    .to_json(),
                ),
                encode_frame(
                    &Response::Error {
                        error: "unknown field \"warp\" in submit request".into(),
                    }
                    .to_json(),
                ),
                // A well-framed but non-JSON payload: the framing layer
                // accepts the length, the payload parser must reject loudly.
                encode_frame_text("not json"),
            ]
        }
        _ => Vec::new(),
    }
}

/// The small spec the harness bases seeds and differential runs on.
pub fn tiny_spec() -> ExperimentSpec {
    ExperimentSpec {
        presets: vec![
            prestage_sim::ConfigPreset::Base,
            prestage_sim::ConfigPreset::ClgpL0,
        ],
        tech: prestage_cacti::TechNode::T090,
        l1_sizes: vec![1 << 10, 4 << 10],
        bench: Some(vec!["gzip".into()]),
        warmup_insts: 500,
        measure_insts: 2_000,
        workload_seed: 7,
        exec_seed: 3,
        threads: Some(2),
        predictor: prestage_sim::PredictorKind::Stream,
        trace: None,
        prefetcher: None,
        itlb: Some(prestage_core::ITlbConfig {
            entries: 16,
            assoc: 2,
            page_bytes: 1024,
            miss_cycles: 12,
        }),
        insertion: Some(prestage_core::InsertionPolicy::Lru),
    }
}

/// A benchmark profile shrunk to fuzz-loop size (a few KB of code).
pub fn tiny_workload() -> prestage_workload::Workload {
    let mut p = prestage_workload::by_name("gzip").expect("known benchmark");
    p.i_footprint_kb = p.i_footprint_kb.min(4);
    p.n_funcs = p.n_funcs.min(8);
    prestage_workload::build(&p, 7)
}
