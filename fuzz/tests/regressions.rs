//! Replay every checked-in corpus and regression input through its
//! target, pin the named crashers that produced code fixes, and smoke the
//! deterministic campaign + differential driver at CI-friendly budgets.

use prestage_fuzz::{
    builtin_seeds, check_input, default_corpus_root, default_regressions_root, fuzz_target,
    named_inputs, target_by_name, targets, Outcome,
};

/// Every file under `fuzz/corpus/<target>/` and `fuzz/regressions/<target>/`
/// must run clean: accepted or rejected, never a panic or a nameless error.
#[test]
fn all_checked_in_inputs_run_clean() {
    let mut replayed = 0;
    for t in targets() {
        for root in [default_corpus_root(), default_regressions_root()] {
            for (name, bytes) in named_inputs(&root.join(t.name)) {
                let verdict = check_input(t, &bytes);
                assert!(
                    verdict.is_ok(),
                    "{}/{name}: {}",
                    t.name,
                    verdict.unwrap_err()
                );
                replayed += 1;
            }
        }
    }
    // The corpus is part of the harness: an empty directory tree means a
    // packaging mistake, not a clean run.
    assert!(replayed >= 10, "only {replayed} checked-in inputs found");
}

/// `fuzz/regressions/shard/inverted-range.json` — the crasher that led to
/// the inverted-range check in `ShardFile::from_json`.
#[test]
fn regression_inverted_shard_range() {
    let bytes = std::fs::read(default_regressions_root().join("shard/inverted-range.json"))
        .expect("checked-in regression input");
    let t = target_by_name("shard").unwrap();
    assert_eq!(check_input(t, &bytes), Ok(Outcome::Rejected));
    let e = prestage_sim::ShardFile::from_json(std::str::from_utf8(&bytes).unwrap()).unwrap_err();
    assert!(e.contains("inverted") && e.contains("cells.start 5"), "{e}");
}

/// `fuzz/regressions/shard/negative-wall.json` — the crasher that led to
/// the wall_s range check (previously a `Duration::from_secs_f64` panic).
#[test]
fn regression_negative_wall_seconds() {
    let bytes = std::fs::read(default_regressions_root().join("shard/negative-wall.json"))
        .expect("checked-in regression input");
    let t = target_by_name("shard").unwrap();
    assert_eq!(check_input(t, &bytes), Ok(Outcome::Rejected));
    let e = prestage_sim::ShardFile::from_json(std::str::from_utf8(&bytes).unwrap()).unwrap_err();
    assert!(e.contains("wall_s"), "{e}");
}

/// `fuzz/regressions/spec/warmup-measure-overflow.json` — parses (every
/// field is well-formed) but must *validate* to a named error instead of
/// overflowing the run-length sum.
#[test]
fn regression_overflowing_run_length() {
    let bytes = std::fs::read(
        default_regressions_root().join("spec/warmup-measure-overflow.json"),
    )
    .expect("checked-in regression input");
    let t = target_by_name("spec").unwrap();
    assert_eq!(check_input(t, &bytes), Ok(Outcome::Accepted));
    let spec =
        prestage_sim::ExperimentSpec::from_json(std::str::from_utf8(&bytes).unwrap()).unwrap();
    let e = spec.validate().unwrap_err();
    assert!(e.contains("overflows"), "{e}");
}

/// A bounded campaign over every target is crash-free and bit-repeatable —
/// the exact invocation CI runs via `prestage fuzz`.
#[test]
fn bounded_campaign_is_deterministic_and_clean() {
    let corpus = default_corpus_root();
    let regressions = default_regressions_root();
    for t in targets() {
        let mut seeds = builtin_seeds(t.name);
        seeds.extend(prestage_fuzz::load_seeds(&corpus, t.name));
        seeds.extend(prestage_fuzz::load_seeds(&regressions, t.name));
        let a = fuzz_target(t, &seeds, 300, prestage_fuzz::DEFAULT_SEED);
        let b = fuzz_target(t, &seeds, 300, prestage_fuzz::DEFAULT_SEED);
        assert!(
            a.crashes.is_empty(),
            "{}: {}",
            t.name,
            a.crashes
                .iter()
                .map(|c| c.message.as_str())
                .collect::<Vec<_>>()
                .join("; ")
        );
        assert_eq!((a.executions, a.accepted, a.rejected), (b.executions, b.accepted, b.rejected));
        // A campaign that rejects nothing (or accepts nothing) is not
        // exercising both sides of the parser.
        assert!(a.accepted > 0 && a.rejected > 0, "{}: degenerate campaign", t.name);
    }
}

/// A small differential run (the full 100-spec sweep is `prestage fuzz`'s
/// job): live == shard/merge == replay, six-way disabled-prefetch
/// equality, and schema-1/2 upgrade identity, on a handful of random specs.
#[test]
fn differential_properties_hold_on_sampled_specs() {
    let report = prestage_fuzz::differential::run_differential(4, 0xD1FF, |_| {});
    assert_eq!(report.specs, 4);
    assert_eq!(report.mechanism_checks, 4);
    assert!(
        report.failures.is_empty(),
        "differential failures:\n{}",
        report.failures.join("\n")
    );
}
