//! `prestage` — the spec-driven front door to the simulator.
//!
//! Every experiment is an `ExperimentSpec`: a serializable value naming
//! the presets, tech node, L1 sizes, benchmark filter, run lengths, seeds
//! and predictor.  The CLI runs specs whole, shards them across
//! processes, and merges shard outputs back into the exact single-process
//! result:
//!
//! ```text
//! prestage run   <spec.json | figure> [--out <file>]
//! prestage shard --spec <spec.json | figure> --cells A..B --out <file>
//! prestage merge <shard.json>... [--out <file>]
//! prestage trace record <spec.json | figure> --out <dir>
//! prestage trace info   <trace.pstr>
//! prestage spec  <figure> [--out <file>]
//! prestage fuzz  [--budget <N>] [--seed <S>] [--corpus <dir>] [--crashes <dir>]
//! prestage list
//! prestage serve  [--state <dir>] [--listen <addr>] [...] | --check
//! prestage submit <spec.json | figure> [--wait] [--out <file>]
//! prestage status [<sweep>] [--watch]
//! prestage fetch  <sweep> [--out <file>]
//! ```
//!
//! `trace record` captures one v2 trace per benchmark of a spec (run
//! length + run-ahead slack); a spec whose `trace` field names that
//! directory then *replays* the recordings instead of regenerating the
//! dynamic path in every cell — in `run` and in every `shard` process
//! alike.  Replay is bit-exact, so `run --out` artifacts are byte-identical
//! either way (the trace source, like the pool width, is cleared from the
//! embedded spec).
//!
//! A *figure* argument (`fig1`, `fig5b`, ...) resolves to the declared
//! spec from `prestage_bench::figures` with the `PRESTAGE_*` environment
//! overrides applied — exactly what the figure binary would run.  A
//! *file* argument is taken verbatim: what is in the file is what runs,
//! so two shards of the same file are guaranteed to agree.
//!
//! `run --out` and `merge --out` write the same canonical grid JSON, so
//! `diff` proves a sharded run reproduced the single-process results
//! bit-exactly (CI does exactly that; see `.github/workflows/ci.yml`).
//!
//! `serve` runs the always-on sweep daemon (`prestage-serve`): submitted
//! specs are journaled, split into cell-range jobs, evaluated on a worker
//! pool, and cached content-addressed — a resubmitted or overlapping
//! sweep is served from cache, byte-identical to `run --out`.  `submit`,
//! `status` and `fetch` are its clients, discovering the daemon through
//! the state directory's address file.

use prestage_bench::figures::{self, Figure};
use prestage_bench::report;
use prestage_serve::{Dispatch, Request, Response, ServeConfig};
use prestage_sim::spec::{grid_output, run_spec_cells, ShardFile, TraceSource};
use prestage_sim::{pool_map, try_run_spec, CellGrid, ConfigPreset, ExperimentSpec, GridResult};
use prestage_workload::{build, open_trace, record_trace, specint2000, DEFAULT_CHUNK_INSTS};
use std::io::BufWriter;
use std::path::{Path, PathBuf};
use std::process::exit;

fn usage() -> ! {
    eprintln!(
        "usage:\n  \
         prestage run   <spec.json | figure> [--out <file>]\n  \
         prestage shard --spec <spec.json | figure> --cells A..B --out <file>\n  \
         prestage merge <shard.json>... [--out <file>]\n  \
         prestage trace record <spec.json | figure> --out <dir>\n  \
         prestage trace info   <trace.pstr>\n  \
         prestage spec  <figure> [--out <file>]\n  \
         prestage fuzz  [--budget <N>] [--seed <S>] [--corpus <dir>] [--crashes <dir>]\n  \
         prestage lint  [--rule <name>]... [--baseline <file>] [--update-baseline]\n  \
         prestage list\n  \
         prestage serve  [--state <dir>] [--listen <host:port>] [--workers <N>]\n  \
         \x20               [--job-cells <N>] [--deadline <secs>] [--max-attempts <N>]\n  \
         \x20               [--dispatch inproc|child] [--threads-per-job <N>] | --check\n  \
         prestage submit <spec.json | figure> [--state <dir>] [--addr <a>] [--wait] [--out <file>]\n  \
         prestage status [<sweep>] [--state <dir>] [--addr <a>] [--watch]\n  \
         prestage fetch  <sweep> [--state <dir>] [--addr <a>] [--out <file>]\n\n\
         A figure name (see `prestage list`) runs its declared spec with the\n\
         PRESTAGE_* environment overrides applied; a spec file runs verbatim.\n\
         A spec whose \"trace\" field is {{\"dir\": \"<dir>\"}} replays traces\n\
         previously captured by `trace record` instead of generating live."
    );
    exit(2);
}

fn fail(msg: &str) -> ! {
    eprintln!("prestage: {msg}");
    exit(2);
}

/// Value following `--key`, removed from `args` together with the key.
fn take_flag(args: &mut Vec<String>, key: &str) -> Option<String> {
    let i = args.iter().position(|a| a == key)?;
    if i + 1 >= args.len() {
        fail(&format!("{key} needs a value"));
    }
    args.remove(i);
    Some(args.remove(i))
}

/// Resolve a spec argument: an existing file parses verbatim; otherwise a
/// declared figure name (whose spec gets the environment overrides, like
/// the figure binary).  Returns the figure declaration when there is one,
/// so `run` can render the figure's own report kind.
fn load_spec(arg: &str) -> (ExperimentSpec, Option<&'static Figure>) {
    let path = std::path::Path::new(arg);
    if path.exists() {
        let text = std::fs::read_to_string(path)
            .unwrap_or_else(|e| fail(&format!("cannot read {arg}: {e}")));
        let spec = ExperimentSpec::from_json(&text)
            .unwrap_or_else(|e| fail(&format!("{arg}: {e}")));
        if let Err(e) = spec.validate() {
            fail(&format!("{arg}: {e}"));
        }
        return (spec, None);
    }
    if let Some(fig) = figures::by_name(arg) {
        return ((fig.make_spec)().env_overrides(), Some(fig));
    }
    let names: Vec<&str> = figures::FIGURES.iter().map(|f| f.name).collect();
    fail(&format!(
        "{arg:?} is neither a spec file nor a figure (figures: {})",
        names.join(", ")
    ));
}

fn write_out(path: &str, content: &str) {
    if let Some(dir) = std::path::Path::new(path).parent() {
        let _ = std::fs::create_dir_all(dir);
    }
    std::fs::write(path, content)
        .unwrap_or_else(|e| fail(&format!("cannot write {path}: {e}")));
    eprintln!("wrote {path}");
}

fn cmd_run(mut args: Vec<String>) {
    let out = take_flag(&mut args, "--out");
    let [arg] = args.as_slice() else { usage() };
    let (spec, fig) = load_spec(arg);
    let t0 = std::time::Instant::now();
    let rows = try_run_spec(&spec).unwrap_or_else(|e| fail(&e));
    eprintln!(
        "  ran {} cells in {:.2}s",
        spec.presets.len() * spec.l1_sizes.len() * rows[0][0].per_bench.len(),
        t0.elapsed().as_secs_f64()
    );
    match fig {
        // A declared figure renders exactly like its binary (CSV included).
        Some(f) => report::render(f.report, f.title, f.name, &spec, &rows),
        // An ad-hoc spec file prints the table without touching results/.
        None => report::sweep_table(&format!("spec {arg}"), &spec, &rows),
    }
    if let Some(path) = out {
        write_out(&path, &grid_output(&spec, &rows));
    }
}

fn parse_range(s: &str, n_cells: usize) -> (usize, usize) {
    let parsed = s.split_once("..").and_then(|(a, b)| {
        Some((a.trim().parse::<usize>().ok()?, b.trim().parse::<usize>().ok()?))
    });
    let Some((start, end)) = parsed else {
        fail(&format!("--cells wants A..B (half-open), got {s:?}"));
    };
    if start >= end || end > n_cells {
        fail(&format!(
            "cell range {start}..{end} is invalid for this spec's {n_cells} cells"
        ));
    }
    (start, end)
}

fn cmd_shard(mut args: Vec<String>) {
    let spec_arg = take_flag(&mut args, "--spec").unwrap_or_else(|| usage());
    let range_arg = take_flag(&mut args, "--cells").unwrap_or_else(|| usage());
    let out = take_flag(&mut args, "--out").unwrap_or_else(|| usage());
    if !args.is_empty() {
        usage();
    }
    let (spec, _) = load_spec(&spec_arg);
    let grid = CellGrid::from_spec(&spec).unwrap_or_else(|e| fail(&e));
    let (start, end) = parse_range(&range_arg, grid.n_cells());
    let cells = grid.cells();
    let t0 = std::time::Instant::now();
    let results = run_spec_cells(&spec, &cells[start..end]).unwrap_or_else(|e| fail(&e));
    eprintln!(
        "  shard {start}..{end}: ran {} of {} cells in {:.2}s",
        end - start,
        grid.n_cells(),
        t0.elapsed().as_secs_f64()
    );
    let shard = ShardFile { spec, start, end, results };
    write_out(&out, &shard.to_json());
}

fn cmd_merge(mut args: Vec<String>) {
    let out = take_flag(&mut args, "--out");
    if args.is_empty() {
        usage();
    }
    let mut shards: Vec<(String, ShardFile)> = Vec::new();
    for path in args {
        let text = std::fs::read_to_string(&path)
            .unwrap_or_else(|e| fail(&format!("cannot read {path}: {e}")));
        let shard = ShardFile::from_json(&text)
            .unwrap_or_else(|e| fail(&format!("{path}: {e}")));
        shards.push((path, shard));
    }
    let spec = shards[0].1.spec.clone();
    // Portable comparison: shards that only disagree on `threads` or on
    // the committed-path source (replay is bit-exact to live generation)
    // still describe the same experiment.
    let itlb_desc = |itlb: &Option<prestage_sim::ITlbConfig>| match itlb {
        None => "no i-TLB".to_string(),
        Some(c) => format!("a {}-entry {}-way i-TLB", c.entries, c.assoc),
    };
    for (path, shard) in &shards[1..] {
        // Mixed translation is named specifically: a shard simulated with
        // a different (or absent) i-TLB measured a different machine, and
        // the generic spec-mismatch message below would hide which knob.
        if shard.spec.itlb != spec.itlb {
            fail(&format!(
                "{path} was simulated with {} but {} with {} — \
                 translated and untranslated shards cannot merge into one figure",
                itlb_desc(&shard.spec.itlb),
                shards[0].0,
                itlb_desc(&spec.itlb)
            ));
        }
        if shard.spec.portable() != spec.portable() {
            fail(&format!(
                "{path} was produced from a different spec than {} — refusing to merge",
                shards[0].0
            ));
        }
    }
    let grid = CellGrid::from_spec(&spec).unwrap_or_else(|e| fail(&e));
    let names = spec.bench_names().unwrap_or_else(|e| fail(&e));
    // Refuse malformed shard sets by name before handing results to
    // merge_named (whose own duplicate/missing checks can only panic with
    // flat cell positions, not file names).
    let n_cells = grid.n_cells();
    let mut ranges: Vec<(usize, usize, &str)> = shards
        .iter()
        .map(|(p, s)| (s.start, s.end, p.as_str()))
        .collect();
    ranges.sort();
    let mut next = 0usize;
    let mut widest: Option<(usize, usize, &str)> = None;
    for &(start, end, path) in &ranges {
        if end > n_cells {
            fail(&format!(
                "{path} covers cells {start}..{end}, but the grid has only {n_cells} cells"
            ));
        }
        // Sorted by start, so any start inside the furthest coverage so
        // far means two shards claim the same cells (duplicates included).
        if let Some((wstart, wend, wpath)) = widest {
            if start < wend && start < end {
                fail(&format!(
                    "{wpath} (cells {wstart}..{wend}) and {path} (cells {start}..{end}) \
                     overlap — refusing to merge"
                ));
            }
        }
        if start > next {
            fail(&format!(
                "no shard covers cells {next}..{start} — refusing to merge a partial grid"
            ));
        }
        next = next.max(end);
        if widest.is_none_or(|(_, wend, _)| end > wend) {
            widest = Some((start, end, path));
        }
    }
    if next < n_cells {
        fail(&format!(
            "no shard covers cells {next}..{n_cells} — refusing to merge a partial grid"
        ));
    }
    let results: Vec<_> = shards.into_iter().flat_map(|(_, s)| s.results).collect();
    // merge_named fails loudly on duplicate or missing cells — a sharded
    // run that lost a cell must not ship a partial figure.
    let rows: Vec<Vec<GridResult>> = grid.merge_named(results, &names);
    report::sweep_table("merged shards", &spec, &rows);
    if let Some(path) = out {
        write_out(&path, &grid_output(&spec, &rows));
    }
}

/// Capture one v2 trace per benchmark of a spec into `--out <dir>`: the
/// record half of record-once/replay-everywhere.  Recording length is the
/// spec's run length plus run-ahead slack
/// ([`prestage_sim::TRACE_RECORD_SLACK`]), so any run of the same spec —
/// whole or sharded — replays without running dry.
fn cmd_trace_record(mut args: Vec<String>) {
    let out = take_flag(&mut args, "--out").unwrap_or_else(|| usage());
    let [arg] = args.as_slice() else { usage() };
    let (spec, _) = load_spec(arg);
    let profiles = spec.bench_profiles().unwrap_or_else(|e| fail(&e));
    std::fs::create_dir_all(&out)
        .unwrap_or_else(|e| fail(&format!("cannot create {out}: {e}")));
    let n_insts = spec.trace_record_insts();
    let t0 = std::time::Instant::now();
    let written = pool_map(profiles.len(), spec.resolved_threads(), |i| {
        let p = &profiles[i];
        let w = build(p, spec.workload_seed);
        let path = TraceSource { dir: out.clone() }.trace_path(
            p.name,
            spec.workload_seed,
            spec.exec_seed,
        );
        let f = std::fs::File::create(&path)
            .map_err(|e| format!("cannot create {}: {e}", path.display()))?;
        let count = record_trace(BufWriter::new(f), &w, spec.exec_seed, n_insts, DEFAULT_CHUNK_INSTS)
            .map_err(|e| format!("recording {}: {e}", path.display()))?;
        let bytes = std::fs::metadata(&path).map(|m| m.len()).unwrap_or(0);
        Ok::<_, String>((path, count, bytes))
    });
    for r in &written {
        match r {
            Ok((path, count, bytes)) => {
                eprintln!("  wrote {} ({count} insts, {bytes} bytes)", path.display())
            }
            Err(e) => fail(e),
        }
    }
    eprintln!(
        "recorded {} trace(s) in {:.2}s; replay them by setting \
         \"trace\": {{\"dir\": {out:?}}} in the spec",
        written.len(),
        t0.elapsed().as_secs_f64()
    );
}

/// Print a trace's self-describing header and verify every chunk CRC by
/// streaming the whole file — the first thing to run on a trace that
/// behaves strangely.
fn cmd_trace_info(args: Vec<String>) {
    let [path] = args.as_slice() else { usage() };
    let mut reader =
        open_trace(Path::new(path)).unwrap_or_else(|e| fail(&e.to_string()));
    let h = reader.header().clone();
    println!("{path}: PSTR v{}", h.version);
    match &h.meta {
        Some(m) => {
            println!("  profile:       {}", m.profile);
            println!("  workload_seed: {}", m.workload_seed);
            println!("  exec_seed:     {}", m.exec_seed);
            println!("  chunk size:    {} records", h.chunk_insts);
        }
        None => println!("  (v1: no embedded identity, no CRCs)"),
    }
    println!("  instructions:  {}", h.count);
    let mut records = 0u64;
    for rec in reader.by_ref() {
        match rec {
            Ok(_) => records += 1,
            Err(e) => fail(&format!("{path}: record {records}: {e}")),
        }
    }
    let bytes = std::fs::metadata(path).map(|m| m.len()).unwrap_or(0);
    println!(
        "  verified:      {records} records in {} chunk(s), {bytes} bytes",
        reader.chunks_read()
    );
}

fn cmd_trace(mut args: Vec<String>) {
    if args.is_empty() {
        usage();
    }
    match args.remove(0).as_str() {
        "record" => cmd_trace_record(args),
        "info" => cmd_trace_info(args),
        _ => usage(),
    }
}

/// Dump a declared figure's spec as JSON — the starting point for a
/// custom spec file (`prestage spec fig5b --out mine.json`, edit, run).
/// The environment overrides are *not* applied: the output is the
/// declaration itself, reproducible regardless of the caller's shell.
fn cmd_spec(mut args: Vec<String>) {
    let out = take_flag(&mut args, "--out");
    let [name] = args.as_slice() else { usage() };
    let Some(fig) = figures::by_name(name) else {
        let names: Vec<&str> = figures::FIGURES.iter().map(|f| f.name).collect();
        fail(&format!("unknown figure {name:?} (figures: {})", names.join(", ")));
    };
    let text = (fig.make_spec)().to_json();
    match out {
        Some(path) => write_out(&path, &text),
        None => print!("{text}"),
    }
}

fn cmd_list() {
    println!("# figures (prestage run <name>; PRESTAGE_* overrides apply)");
    for f in &figures::FIGURES {
        println!("  {:<7} {}", f.name, f.title);
    }
    println!("\n# presets (spec \"presets\" entries)");
    for p in ConfigPreset::all() {
        println!("  {:<14} {}", p.id(), p.label());
    }
    println!("\n# tech nodes (spec \"tech\")");
    for n in prestage_cacti::TechNode::all() {
        println!("  {:<5} {}", n.id(), n.label());
    }
    println!("\n# prefetcher mechanisms (spec \"prefetcher\"; null = preset default)");
    for k in prestage_core::PrefetcherKind::all() {
        println!("  {:<9} {}", k.id(), k.label());
    }
    println!("\n# benchmarks (spec \"bench\" entries; null = all)");
    println!("  {:<10} {:>8} {:>7} {:>8}", "name", "code KB", "funcs", "data KB");
    for p in specint2000() {
        println!(
            "  {:<10} {:>8} {:>7} {:>8}",
            p.name, p.i_footprint_kb, p.n_funcs, p.d_footprint_kb
        );
    }
}

/// `prestage fuzz` — the deterministic fuzz + differential conformance
/// harness (see `fuzz/`), bounded by `--budget` so CI can run it on every
/// push.  A fixed `--seed` (default [`prestage_fuzz::DEFAULT_SEED`])
/// replays the exact same campaign; exits non-zero on any crash,
/// error-convention violation, or differential mismatch.
fn cmd_fuzz(mut args: Vec<String>) {
    let parse_u64 = |key: &str, v: String| -> u64 {
        v.parse()
            .unwrap_or_else(|_| fail(&format!("{key} wants an unsigned integer, got {v:?}")))
    };
    let budget = take_flag(&mut args, "--budget").map_or(2_000, |v| parse_u64("--budget", v));
    let seed = take_flag(&mut args, "--seed")
        .map_or(prestage_fuzz::DEFAULT_SEED, |v| parse_u64("--seed", v));
    let corpus = take_flag(&mut args, "--corpus")
        .map_or_else(prestage_fuzz::default_corpus_root, std::path::PathBuf::from);
    let crashes_dir = take_flag(&mut args, "--crashes");
    if !args.is_empty() {
        usage();
    }

    let t0 = std::time::Instant::now();
    let mut broken = false;
    for r in prestage_fuzz::run_byte_fuzzers(budget, seed, &corpus) {
        eprintln!(
            "  fuzz {:<6} {} execs: {} accepted, {} rejected, {} crash(es)",
            r.target,
            r.executions,
            r.accepted,
            r.rejected,
            r.crashes.len()
        );
        for c in &r.crashes {
            broken = true;
            eprintln!("    CRASH [{}]: {}", c.target, c.message);
            if let Some(dir) = &crashes_dir {
                let dir = Path::new(dir).join(c.target);
                std::fs::create_dir_all(&dir)
                    .unwrap_or_else(|e| fail(&format!("cannot create {}: {e}", dir.display())));
                let path = dir.join(prestage_fuzz::input_tag(&c.input));
                std::fs::write(&path, &c.input)
                    .unwrap_or_else(|e| fail(&format!("cannot write {}: {e}", path.display())));
                eprintln!("    crasher input saved to {}", path.display());
            }
        }
    }

    // ≥ 100 differential specs at any budget; more when the budget allows.
    let n_specs = (budget / 20).max(100);
    let mut done = 0u64;
    let diff = prestage_fuzz::differential::run_differential(n_specs, seed, |_| {
        done += 1;
        if done.is_multiple_of(25) {
            eprintln!("  differential: {done}/{n_specs} spec(s) checked");
        }
    });
    eprintln!(
        "  differential: {} spec(s) live==shard==replay + schema upgrade, \
         {} disabled-prefetch six-way check(s), {} failure(s)",
        diff.specs,
        diff.mechanism_checks,
        diff.failures.len()
    );
    for f in &diff.failures {
        broken = true;
        eprintln!("    FAIL: {f}");
    }

    eprintln!(
        "fuzz: budget {budget}, seed {seed:#x}, {:.2}s",
        t0.elapsed().as_secs_f64()
    );
    if broken {
        eprintln!("fuzz: FAILURES FOUND — minimize the inputs above and check them in under fuzz/regressions/");
        exit(1);
    }
    eprintln!("fuzz: clean");
}

/// Remove a boolean `--flag` from `args`, reporting whether it was there.
fn take_switch(args: &mut Vec<String>, key: &str) -> bool {
    let before = args.len();
    args.retain(|a| a != key);
    before != args.len()
}

fn parse_usize(key: &str, v: String) -> usize {
    v.parse()
        .unwrap_or_else(|_| fail(&format!("{key} wants an unsigned integer, got {v:?}")))
}

/// State directory for the serve family: `--state` wins, else the
/// workspace default (`results/serve`, honoring `PRESTAGE_RESULTS_DIR`).
fn serve_state(args: &mut Vec<String>) -> PathBuf {
    take_flag(args, "--state")
        .map(PathBuf::from)
        .unwrap_or_else(prestage_serve::default_state_dir)
}

/// `prestage serve` — run the sweep daemon (or audit its journal with
/// `--check`: exits non-zero unless the journal replays clean, fully
/// drained, ending in the clean-shutdown marker).
fn cmd_serve(mut args: Vec<String>) {
    let state = serve_state(&mut args);
    if take_switch(&mut args, "--check") {
        if !args.is_empty() {
            usage();
        }
        match prestage_serve::check(&state) {
            Ok(summary) => println!("{summary}"),
            Err(e) => fail(&e),
        }
        return;
    }
    let mut cfg = ServeConfig::new(state);
    if let Some(v) = take_flag(&mut args, "--listen") {
        cfg.listen = v;
    }
    if let Some(v) = take_flag(&mut args, "--workers") {
        cfg.workers = parse_usize("--workers", v).max(1);
    }
    if let Some(v) = take_flag(&mut args, "--job-cells") {
        cfg.job_cells = parse_usize("--job-cells", v).max(1);
    }
    if let Some(v) = take_flag(&mut args, "--deadline") {
        cfg.deadline = std::time::Duration::from_secs(parse_usize("--deadline", v) as u64);
    }
    if let Some(v) = take_flag(&mut args, "--max-attempts") {
        cfg.max_attempts = u32::try_from(parse_usize("--max-attempts", v).max(1))
            .unwrap_or(u32::MAX);
    }
    if let Some(v) = take_flag(&mut args, "--dispatch") {
        cfg.dispatch = match v.as_str() {
            "inproc" => Dispatch::InProcess,
            "child" => Dispatch::Child,
            other => fail(&format!("--dispatch wants inproc or child, got {other:?}")),
        };
    }
    if let Some(v) = take_flag(&mut args, "--threads-per-job") {
        cfg.threads_per_job = parse_usize("--threads-per-job", v).max(1);
    }
    if !args.is_empty() {
        usage();
    }
    prestage_serve::serve(cfg).unwrap_or_else(|e| fail(&e));
}

/// One request to the daemon found via `--addr`/the state dir's address
/// file; any transport or protocol error is fatal.
fn serve_request(addr: &str, req: &Request) -> Response {
    prestage_serve::request(addr, req).unwrap_or_else(|e| fail(&e))
}

/// Block until `sweep` reaches a terminal state, then return its artifact.
fn wait_for_artifact(addr: &str, sweep: &str) -> String {
    loop {
        let resp = serve_request(addr, &Request::Status { sweep: Some(sweep.to_string()) });
        let Response::Status { sweeps } = resp else {
            fail("daemon answered status with an unexpected response kind");
        };
        let Some(s) = sweeps.iter().find(|s| s.sweep == sweep) else {
            fail(&format!("daemon no longer knows sweep {sweep}"));
        };
        match s.state.as_str() {
            "done" => break,
            state if state.starts_with("failed") => {
                fail(&format!("sweep {sweep} {state}"))
            }
            _ => std::thread::sleep(std::time::Duration::from_millis(200)),
        }
    }
    match serve_request(addr, &Request::Fetch { sweep: sweep.to_string() }) {
        Response::Artifact { artifact, .. } => artifact,
        Response::Error { error } => fail(&error),
        _ => fail("daemon answered fetch with an unexpected response kind"),
    }
}

/// `prestage submit` — send a spec (file or figure) to the daemon.  The
/// sweep id lands on stdout for scripting; `--wait` blocks until the
/// sweep completes, and `--out` (implies `--wait`) writes the artifact —
/// byte-identical to `prestage run --out` of the same spec.
fn cmd_submit(mut args: Vec<String>) {
    let state = serve_state(&mut args);
    let addr_flag = take_flag(&mut args, "--addr");
    let out = take_flag(&mut args, "--out");
    let wait = take_switch(&mut args, "--wait") || out.is_some();
    let [arg] = args.as_slice() else { usage() };
    let (spec, _) = load_spec(arg);
    let addr =
        prestage_serve::resolve_addr(addr_flag.as_deref(), &state).unwrap_or_else(|e| fail(&e));
    let resp = serve_request(&addr, &Request::Submit { spec });
    let sweep = match resp {
        Response::Submitted { sweep, cells, jobs, cached_cells, complete } => {
            eprintln!(
                "submitted sweep {sweep}: {cells} cell(s), {jobs} job(s), \
                 {cached_cells} cached{}",
                if complete { " — complete, served from cache" } else { "" }
            );
            sweep
        }
        Response::Error { error } => fail(&error),
        _ => fail("daemon answered submit with an unexpected response kind"),
    };
    println!("{sweep}");
    if wait {
        let artifact = wait_for_artifact(&addr, &sweep);
        match out {
            Some(path) => write_out(&path, &artifact),
            None => eprintln!("sweep {sweep} complete"),
        }
    }
}

fn print_status(sweeps: &[prestage_serve::SweepStatus]) {
    if sweeps.is_empty() {
        println!("(no sweeps)");
        return;
    }
    for s in sweeps {
        println!(
            "{}  {:>4}/{:<4} cells ({} cached)  {:>3}/{:<3} jobs  {}",
            s.sweep, s.cells_done, s.cells_total, s.cached_cells, s.jobs_done, s.jobs_total,
            s.state
        );
    }
}

/// `prestage status` — per-sweep progress counters; `--watch` streams
/// them until every listed sweep is terminal.
fn cmd_status(mut args: Vec<String>) {
    let state = serve_state(&mut args);
    let addr_flag = take_flag(&mut args, "--addr");
    let watch = take_switch(&mut args, "--watch");
    let sweep = match args.as_slice() {
        [] => None,
        [s] => Some(s.clone()),
        _ => usage(),
    };
    let addr =
        prestage_serve::resolve_addr(addr_flag.as_deref(), &state).unwrap_or_else(|e| fail(&e));
    loop {
        let resp = serve_request(&addr, &Request::Status { sweep: sweep.clone() });
        let Response::Status { sweeps } = resp else {
            fail("daemon answered status with an unexpected response kind");
        };
        print_status(&sweeps);
        let settled = sweeps
            .iter()
            .all(|s| s.state == "done" || s.state.starts_with("failed"));
        if !watch || settled {
            return;
        }
        std::thread::sleep(std::time::Duration::from_millis(500));
        println!();
    }
}

/// `prestage fetch` — a completed sweep's artifact, to `--out` or stdout.
fn cmd_fetch(mut args: Vec<String>) {
    let state = serve_state(&mut args);
    let addr_flag = take_flag(&mut args, "--addr");
    let out = take_flag(&mut args, "--out");
    let [sweep] = args.as_slice() else { usage() };
    let addr =
        prestage_serve::resolve_addr(addr_flag.as_deref(), &state).unwrap_or_else(|e| fail(&e));
    match serve_request(&addr, &Request::Fetch { sweep: sweep.clone() }) {
        Response::Artifact { artifact, .. } => match out {
            Some(path) => write_out(&path, &artifact),
            None => print!("{artifact}"),
        },
        Response::Error { error } => fail(&error),
        _ => fail("daemon answered fetch with an unexpected response kind"),
    }
}

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() {
        usage();
    }
    let cmd = args.remove(0);
    match cmd.as_str() {
        "run" => cmd_run(args),
        "shard" => cmd_shard(args),
        "merge" => cmd_merge(args),
        "trace" => cmd_trace(args),
        "spec" => cmd_spec(args),
        "fuzz" => cmd_fuzz(args),
        "lint" => exit(prestage_analyze::cli::run("prestage lint", &args)),
        "list" => cmd_list(),
        "serve" => cmd_serve(args),
        "submit" => cmd_submit(args),
        "status" => cmd_status(args),
        "fetch" => cmd_fetch(args),
        _ => usage(),
    }
}
