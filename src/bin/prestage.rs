//! `prestage` — command-line front door to the simulator.
//!
//! ```text
//! prestage run   --bench gcc --preset clgp+l0 --l1 4K --tech 45
//! prestage sweep --preset clgp+l0 --tech 45
//! prestage list
//! ```

use fetch_prestaging::prelude::*;
use fetch_prestaging::sim::run_config_over;
use prestage_workload::{build, specint2000};

fn parse_size(s: &str) -> Option<usize> {
    let s = s.trim().to_uppercase();
    if let Some(k) = s.strip_suffix('K') {
        k.parse::<usize>().ok().map(|v| v << 10)
    } else {
        s.strip_suffix('B')
            .unwrap_or(&s)
            .parse::<usize>()
            .ok()
    }
}

fn parse_preset(s: &str) -> Option<ConfigPreset> {
    use ConfigPreset::*;
    Some(match s.to_lowercase().as_str() {
        "base" => Base,
        "base+l0" => BaseL0,
        "pipelined" | "base-pipelined" => BasePipelined,
        "ideal" => Ideal,
        "fdp" => Fdp,
        "fdp+l0" => FdpL0,
        "fdp+l0+pb16" => FdpL0Pb16,
        "clgp" => Clgp,
        "clgp+l0" => ClgpL0,
        "clgp+l0+pb16" => ClgpL0Pb16,
        _ => return None,
    })
}

fn arg_value(args: &[String], key: &str) -> Option<String> {
    args.iter()
        .position(|a| a == key)
        .and_then(|i| args.get(i + 1).cloned())
}

fn usage() -> ! {
    eprintln!(
        "usage:\n  prestage run   --bench <name> [--preset <p>] [--l1 <size>] [--tech 90|45] [--insts N]\n  prestage sweep [--preset <p>] [--tech 90|45]\n  prestage list\n\npresets: base, base+l0, pipelined, ideal, fdp, fdp+l0, fdp+l0+pb16, clgp, clgp+l0, clgp+l0+pb16"
    );
    std::process::exit(2);
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let cmd = args.first().map(String::as_str).unwrap_or("");
    let tech = match arg_value(&args, "--tech").as_deref() {
        Some("90") => TechNode::T090,
        _ => TechNode::T045,
    };
    let preset = arg_value(&args, "--preset")
        .map(|p| parse_preset(&p).unwrap_or_else(|| usage()))
        .unwrap_or(ConfigPreset::ClgpL0);
    let l1 = arg_value(&args, "--l1")
        .map(|s| parse_size(&s).unwrap_or_else(|| usage()))
        .unwrap_or(4 << 10);
    let insts: u64 = arg_value(&args, "--insts")
        .and_then(|s| s.parse().ok())
        .unwrap_or(500_000);

    match cmd {
        "list" => {
            println!("{:<10} {:>8} {:>7} {:>8}", "benchmark", "code KB", "funcs", "data KB");
            for p in specint2000() {
                println!(
                    "{:<10} {:>8} {:>7} {:>8}",
                    p.name, p.i_footprint_kb, p.n_funcs, p.d_footprint_kb
                );
            }
        }
        "run" => {
            let name = arg_value(&args, "--bench").unwrap_or_else(|| usage());
            let profile = workload::by_name(&name).unwrap_or_else(|| {
                eprintln!("unknown benchmark '{name}' (try `prestage list`)");
                std::process::exit(2);
            });
            let w = build(&profile, 42);
            let cfg = SimConfig::preset(preset, tech, l1).with_insts(insts / 5, insts);
            let s = Engine::new(cfg, &w, 7).run();
            println!(
                "{} | {} | L1 {} | {}",
                profile.name,
                preset.label(),
                l1,
                tech.label()
            );
            println!(
                "IPC {:.3}  cycles {}  committed {}  redirects {} ({:.2} mpki)",
                s.ipc(),
                s.cycles,
                s.committed,
                s.redirects,
                s.mpki()
            );
            println!(
                "fetch sources: PB {:.1}%  L0 {:.1}%  L1 {:.1}%  L2 {:.1}%  Mem {:.1}%",
                100.0 * s.front.fetch_share(s.front.fetch_pb),
                100.0 * s.front.fetch_share(s.front.fetch_l0),
                100.0 * s.front.fetch_share(s.front.fetch_l1),
                100.0 * s.front.fetch_share(s.front.fetch_l2),
                100.0 * s.front.fetch_share(s.front.fetch_mem),
            );
        }
        "sweep" => {
            let workloads: Vec<_> = specint2000().iter().map(|p| build(p, 42)).collect();
            println!("{:<8} {:>8}", "L1", "HMEAN");
            for shift in 8..=16 {
                let size = 1usize << shift;
                let cfg = SimConfig::preset(preset, tech, size).with_insts(insts / 5, insts);
                let r = run_config_over(cfg, &workloads, 7);
                println!("{:<8} {:>8.3}", size, r.hmean_ipc());
            }
        }
        _ => usage(),
    }
}
