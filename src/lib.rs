//! # fetch-prestaging
//!
//! A full reproduction of **"Effective Instruction Prefetching via Fetch
//! Prestaging"** (Ayose Falcón, Alex Ramirez, Mateo Valero — IPDPS 2005) as
//! a Rust workspace: the Cache Line Guided Prestaging (CLGP) mechanism, the
//! Fetch Directed Prefetching (FDP) baseline it is compared against, and
//! every substrate the evaluation needs — a calibrated CACTI-style timing
//! model, an Alpha-like ISA with a basic-block dictionary, synthetic
//! SPECint2000-like workloads, a cache/bus/memory hierarchy, a cascaded
//! stream predictor, and a trace-driven superscalar simulator with
//! wrong-path execution.
//!
//! This umbrella crate re-exports the workspace members under friendly
//! names; depend on the individual `prestage-*` crates for finer-grained
//! builds.
//!
//! ## Quick start
//!
//! ```
//! use fetch_prestaging::prelude::*;
//!
//! // Build a synthetic gcc-like workload and run CLGP+L0 on a 4 KB L1 at
//! // the 0.045um node.
//! let profile = workload::by_name("gcc").expect("known benchmark");
//! let w = workload::build_workload(&profile, 42);
//! let cfg = SimConfig::preset(ConfigPreset::ClgpL0, TechNode::T045, 4 << 10)
//!     .with_insts(2_000, 10_000);
//! let stats = Engine::new(cfg, &w, 7).run();
//! assert!(stats.ipc() > 0.0);
//! println!("IPC {:.3}, {:.1}% of fetches from the prestage buffer",
//!     stats.ipc(), 100.0 * stats.front.fetch_share(stats.front.fetch_pb));
//! ```

/// CACTI-style timing/area/energy model and SIA roadmap (Tables 1 and 3).
pub use prestage_cacti as cacti;

/// Instruction model and the static basic-block dictionary.
pub use prestage_isa as isa;

/// Cache arrays, array ports, and the shared L2/bus/memory system.
pub use prestage_cache as cache;

/// Stream predictor, RAS, and the gshare baseline.
pub use prestage_bpred as bpred;

/// The paper's contribution: FTQ/CLTQ, FDP and CLGP front-ends.
pub use prestage_core as core;

/// Full-system simulator, configuration presets, sweep runner.
pub use prestage_sim as sim;

/// Synthetic SPECint2000-like workload generation and trace tooling.
pub mod workload {
    pub use prestage_workload::codegen::{build as build_workload, BlockControl};
    pub use prestage_workload::profile::by_name;
    pub use prestage_workload::*;
}

/// The names most programs need.
pub mod prelude {
    pub use crate::workload;
    pub use prestage_cacti::TechNode;
    pub use prestage_core::{FrontendConfig, PrefetcherKind};
    pub use prestage_sim::{
        harmonic_mean, run_cells, run_config_over, run_grid, run_spec, try_run_spec, CellGrid,
        ConfigPreset, Engine, ExperimentSpec, SimConfig, SimStats, SweepCell,
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn umbrella_reexports_work_together() {
        let p = workload::by_name("gzip").unwrap();
        let mut p = p;
        p.i_footprint_kb = 4;
        p.n_funcs = 8;
        let w = workload::build_workload(&p, 1);
        let cfg = SimConfig::preset(ConfigPreset::Base, TechNode::T090, 1 << 10)
            .with_insts(1_000, 5_000);
        let s = Engine::new(cfg, &w, 1).run();
        assert!(s.committed >= 5_000);
    }
}
