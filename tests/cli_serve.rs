//! Integration tests of the `prestage serve` orchestrator on the real
//! binaries: daemon + client verbs as separate OS processes, exercising
//! the acceptance properties of the serve subsystem end to end —
//! resubmission as a pure cache hit byte-identical to `prestage run`,
//! cell-cache sharing across overlapping sweeps, kill/restart resume to
//! the same bytes, graceful SIGINT drain, and `PRESTAGE_RESULTS_DIR`
//! anchoring the default state directory independent of cwd.

use std::path::{Path, PathBuf};
use std::process::{Child, Command, Output, Stdio};
use std::time::{Duration, Instant};

fn spec_file() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("specs/ci_shard.json")
}

const SCRUB: &[&str] = &[
    "PRESTAGE_WARMUP",
    "PRESTAGE_MEASURE",
    "PRESTAGE_SEED",
    "PRESTAGE_EXEC_SEED",
    "PRESTAGE_BENCH",
    "PRESTAGE_THREADS",
    "PRESTAGE_RESULTS_DIR",
];

/// The real binary with a scrubbed `PRESTAGE_*` environment (file specs
/// ignore it by design, but the tests must not depend on that).
fn prestage_cmd() -> Command {
    let mut cmd = Command::new(env!("CARGO_BIN_EXE_prestage"));
    for var in SCRUB {
        cmd.env_remove(var);
    }
    cmd
}

fn prestage(args: &[&str]) -> Output {
    prestage_cmd().args(args).output().expect("spawn prestage")
}

fn assert_ok(out: &Output, what: &str) {
    assert!(
        out.status.success(),
        "{what} failed:\nstdout: {}\nstderr: {}",
        String::from_utf8_lossy(&out.stdout),
        String::from_utf8_lossy(&out.stderr)
    );
}

struct TempDir(PathBuf);

impl TempDir {
    fn new(tag: &str) -> TempDir {
        let dir = std::env::temp_dir().join(format!("prestage_{tag}_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        TempDir(dir)
    }

    fn path(&self, name: &str) -> String {
        self.0.join(name).to_string_lossy().into_owned()
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

/// A daemon child that is SIGKILLed on drop so a failing test can't leak
/// a live process holding the state directory.
struct Daemon(Child);

impl Drop for Daemon {
    fn drop(&mut self) {
        let _ = self.0.kill();
        let _ = self.0.wait();
    }
}

fn spawn_daemon(state: &str, extra: &[&str]) -> Daemon {
    // A SIGKILLed daemon leaves its address file behind; drop it so the
    // wait below observes the *new* process's bind, not the stale port.
    let _ = std::fs::remove_file(Path::new(state).join("addr"));
    let child = prestage_cmd()
        .args(["serve", "--state", state, "--listen", "127.0.0.1:0"])
        .args(extra)
        .stdout(Stdio::null())
        .stderr(Stdio::null())
        .spawn()
        .expect("spawn daemon");
    wait_for_addr(Path::new(state));
    Daemon(child)
}

/// Block until the daemon has bound and published its address file.
fn wait_for_addr(state: &Path) {
    let addr = state.join("addr");
    let t0 = Instant::now();
    while !addr.exists() {
        assert!(
            t0.elapsed() < Duration::from_secs(20),
            "daemon never published {}",
            addr.display()
        );
        std::thread::sleep(Duration::from_millis(20));
    }
}

/// SIGINT the daemon and wait for it to drain and exit cleanly.
fn interrupt_and_wait(daemon: &mut Daemon) {
    let pid = daemon.0.id().to_string();
    let ok = Command::new("kill")
        .args(["-INT", &pid])
        .status()
        .expect("spawn kill")
        .success();
    assert!(ok, "kill -INT {pid} failed");
    let t0 = Instant::now();
    loop {
        if let Some(status) = daemon.0.try_wait().expect("try_wait") {
            assert!(status.success(), "daemon exited non-zero after SIGINT");
            return;
        }
        assert!(
            t0.elapsed() < Duration::from_secs(60),
            "daemon did not exit within 60s of SIGINT"
        );
        std::thread::sleep(Duration::from_millis(20));
    }
}

#[test]
fn resubmission_is_a_pure_cache_hit_byte_identical_to_run() {
    let dir = TempDir::new("serve_cache_hit");
    let state = dir.path("state");
    let spec = spec_file();
    let spec = spec.to_str().unwrap();
    let mut daemon = spawn_daemon(&state, &["--workers", "2", "--job-cells", "3"]);

    let first = dir.path("first.json");
    assert_ok(
        &prestage(&["submit", spec, "--state", &state, "--out", &first]),
        "first submit",
    );
    let full = dir.path("full.json");
    assert_ok(&prestage(&["run", spec, "--out", &full]), "run");
    let full_bytes = std::fs::read(&full).unwrap();
    assert!(!full_bytes.is_empty());
    assert_eq!(
        std::fs::read(&first).unwrap(),
        full_bytes,
        "served artifact differs from the single-process run"
    );

    // The identical spec again: zero jobs, answered from the cache alone,
    // and still the same bytes.
    let second = dir.path("second.json");
    let out = prestage(&["submit", spec, "--state", &state, "--out", &second]);
    assert_ok(&out, "resubmit");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        stderr.contains("0 job(s)") && stderr.contains("complete, served from cache"),
        "resubmission must be a pure cache hit: {stderr}"
    );
    assert_eq!(std::fs::read(&second).unwrap(), full_bytes);

    // Graceful shutdown: SIGINT drains, the address file is withdrawn,
    // and the journal audits clean.
    interrupt_and_wait(&mut daemon);
    assert!(
        !Path::new(&state).join("addr").exists(),
        "daemon left its address file behind"
    );
    let out = prestage(&["serve", "--check", "--state", &state]);
    assert_ok(&out, "serve --check");
    assert!(
        String::from_utf8_lossy(&out.stdout).contains("clean shutdown"),
        "check should report the clean-shutdown marker"
    );
}

#[test]
fn overlapping_sweeps_share_cell_cache_entries() {
    let dir = TempDir::new("serve_overlap");
    let state = dir.path("state");
    let spec = spec_file();
    let spec = spec.to_str().unwrap();
    // A superset sweep: same cells plus one more benchmark column
    // (2 presets x 2 sizes x 3 benches = 12 cells, 8 shared).
    let wide = dir.path("wide.json");
    let text = std::fs::read_to_string(spec_file()).unwrap();
    assert!(text.contains("\"mcf\""), "ci_shard spec changed shape");
    std::fs::write(&wide, text.replace("\"mcf\"", "\"mcf\",\n    \"gap\"")).unwrap();

    let mut daemon = spawn_daemon(&state, &["--workers", "2"]);
    assert_ok(&prestage(&["submit", spec, "--state", &state, "--wait"]), "narrow submit");
    let served = dir.path("served_wide.json");
    let out = prestage(&["submit", &wide, "--state", &state, "--out", &served]);
    assert_ok(&out, "wide submit");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        stderr.contains("12 cell(s)") && stderr.contains("8 cached"),
        "overlapping sweep should find all 8 shared cells in the cache: {stderr}"
    );

    // Shared cells or not, the superset artifact is byte-identical to a
    // fresh single-process run — cached cells are interchangeable.
    let full = dir.path("full_wide.json");
    assert_ok(&prestage(&["run", &wide, "--out", &full]), "wide run");
    assert_eq!(
        std::fs::read(&served).unwrap(),
        std::fs::read(&full).unwrap(),
        "superset sweep served from a warm cell cache differs from a cold run"
    );
    interrupt_and_wait(&mut daemon);
}

#[test]
fn sigkill_midsweep_then_restart_resumes_to_identical_bytes() {
    let dir = TempDir::new("serve_kill_resume");
    let state = dir.path("state");
    // Longer cells + one worker + one cell per job widen the window in
    // which the kill lands mid-sweep.
    let slow = dir.path("slow.json");
    let text = std::fs::read_to_string(spec_file()).unwrap();
    assert!(text.contains("\"measure_insts\": 10000"), "ci_shard spec changed shape");
    std::fs::write(&slow, text.replace("\"measure_insts\": 10000", "\"measure_insts\": 60000"))
        .unwrap();

    let daemon = spawn_daemon(&state, &["--workers", "1", "--job-cells", "1"]);
    let out = prestage(&["submit", &slow, "--state", &state]);
    assert_ok(&out, "submit");
    let sweep = String::from_utf8_lossy(&out.stdout).trim().to_string();
    assert!(!sweep.is_empty(), "submit printed no sweep id");

    // Wait for the journal to record at least one finished job, then
    // SIGKILL the daemon — no drain, no shutdown marker.
    let journal = Path::new(&state).join("journal.jsonl");
    let t0 = Instant::now();
    loop {
        let text = std::fs::read_to_string(&journal).unwrap_or_default();
        if text.contains("job_done") {
            break;
        }
        assert!(
            t0.elapsed() < Duration::from_secs(60),
            "no job finished within 60s"
        );
        std::thread::sleep(Duration::from_millis(10));
    }
    drop(daemon); // Drop sends SIGKILL and reaps.

    // The aborted state must audit loud, not clean.
    let out = prestage(&["serve", "--check", "--state", &state]);
    assert!(
        !out.status.success(),
        "serve --check must fail on a journal with no shutdown marker"
    );

    // Restart on the same state directory: the journal replays, unfinished
    // jobs re-enqueue, and the sweep completes to the same bytes a single
    // uninterrupted process produces.
    let mut daemon = spawn_daemon(&state, &["--workers", "1", "--job-cells", "1"]);
    let resumed = dir.path("resumed.json");
    assert_ok(
        &prestage(&["submit", &slow, "--state", &state, "--out", &resumed]),
        "resubmit after restart",
    );
    let full = dir.path("full.json");
    assert_ok(&prestage(&["run", &slow, "--out", &full]), "run");
    assert_eq!(
        std::fs::read(&resumed).unwrap(),
        std::fs::read(&full).unwrap(),
        "resumed sweep differs from an uninterrupted run"
    );
    interrupt_and_wait(&mut daemon);
    assert_ok(&prestage(&["serve", "--check", "--state", &state]), "final check");
}

/// Regression test for results-dir anchoring: with no `--state`, the
/// daemon and every client verb resolve the same state directory through
/// `PRESTAGE_RESULTS_DIR` no matter which directory they run from.
#[test]
fn default_state_dir_follows_results_dir_not_cwd() {
    let dir = TempDir::new("serve_anchor");
    let results = dir.path("results");
    let cwd_a = dir.path("cwd_a");
    let cwd_b = dir.path("cwd_b");
    std::fs::create_dir_all(&cwd_a).unwrap();
    std::fs::create_dir_all(&cwd_b).unwrap();
    let spec = spec_file();
    let spec = spec.to_str().unwrap();

    // Daemon from cwd_a, no --state: state must land under the results
    // dir, not under cwd_a.
    let child = prestage_cmd()
        .args(["serve", "--listen", "127.0.0.1:0", "--workers", "2"])
        .env("PRESTAGE_RESULTS_DIR", &results)
        .current_dir(&cwd_a)
        .stdout(Stdio::null())
        .stderr(Stdio::null())
        .spawn()
        .expect("spawn daemon");
    let state = Path::new(&results).join("serve");
    wait_for_addr(&state);
    let mut daemon = Daemon(child);
    assert!(
        !Path::new(&cwd_a).join("results").exists(),
        "daemon anchored its state to cwd instead of PRESTAGE_RESULTS_DIR"
    );

    // A client in a *different* cwd with the same env finds the daemon.
    let served = dir.path("served.json");
    let out = prestage_cmd()
        .args(["submit", spec, "--out", &served])
        .env("PRESTAGE_RESULTS_DIR", &results)
        .current_dir(&cwd_b)
        .output()
        .expect("spawn submit");
    assert_ok(&out, "submit via results-dir anchor");
    let full = dir.path("full.json");
    assert_ok(&prestage(&["run", spec, "--out", &full]), "run");
    assert_eq!(std::fs::read(&served).unwrap(), std::fs::read(&full).unwrap());

    interrupt_and_wait(&mut daemon);
    let out = prestage_cmd()
        .args(["serve", "--check"])
        .env("PRESTAGE_RESULTS_DIR", &results)
        .current_dir(&cwd_b)
        .output()
        .expect("spawn check");
    assert_ok(&out, "serve --check via results-dir anchor");
}
