//! Integration test of the `prestage` CLI's scale-out path: two disjoint
//! shards run as separate OS processes, merged, and diffed byte-for-byte
//! against a single-process `prestage run` of the same spec — the
//! acceptance property of the sharding redesign.

use std::path::{Path, PathBuf};
use std::process::{Command, Output};

fn spec_file() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("specs/ci_shard.json")
}

/// Run the real binary with a scrubbed `PRESTAGE_*` environment (file
/// specs ignore it by design, but the test must not depend on that).
fn prestage(args: &[&str]) -> Output {
    let mut cmd = Command::new(env!("CARGO_BIN_EXE_prestage"));
    for var in [
        "PRESTAGE_WARMUP",
        "PRESTAGE_MEASURE",
        "PRESTAGE_SEED",
        "PRESTAGE_EXEC_SEED",
        "PRESTAGE_BENCH",
        "PRESTAGE_THREADS",
        "PRESTAGE_RESULTS_DIR",
    ] {
        cmd.env_remove(var);
    }
    cmd.args(args).output().expect("spawn prestage")
}

fn assert_ok(out: &Output, what: &str) {
    assert!(
        out.status.success(),
        "{what} failed:\nstdout: {}\nstderr: {}",
        String::from_utf8_lossy(&out.stdout),
        String::from_utf8_lossy(&out.stderr)
    );
}

struct TempDir(PathBuf);

impl TempDir {
    fn new(tag: &str) -> TempDir {
        let dir = std::env::temp_dir().join(format!("prestage_{tag}_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        TempDir(dir)
    }

    fn path(&self, name: &str) -> String {
        self.0.join(name).to_string_lossy().into_owned()
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

#[test]
fn two_process_shard_merge_equals_single_process_run_byte_exactly() {
    let dir = TempDir::new("shard_merge");
    let spec = spec_file();
    let spec = spec.to_str().unwrap();
    // specs/ci_shard.json: 2 presets x 2 sizes x 2 benches = 8 cells.
    // Deliberately uneven split; merge order deliberately reversed.
    let a = dir.path("a.json");
    let b = dir.path("b.json");
    let merged = dir.path("merged.json");
    let full = dir.path("full.json");
    assert_ok(
        &prestage(&["shard", "--spec", spec, "--cells", "0..3", "--out", &a]),
        "shard A",
    );
    assert_ok(
        &prestage(&["shard", "--spec", spec, "--cells", "3..8", "--out", &b]),
        "shard B",
    );
    assert_ok(&prestage(&["merge", &b, &a, "--out", &merged]), "merge");
    assert_ok(&prestage(&["run", spec, "--out", &full]), "run");

    let merged_bytes = std::fs::read(&merged).unwrap();
    let full_bytes = std::fs::read(&full).unwrap();
    assert!(!merged_bytes.is_empty());
    assert_eq!(
        merged_bytes, full_bytes,
        "merged shard output differs from the single-process run"
    );
}

#[test]
fn merge_refuses_incomplete_or_overlapping_coverage() {
    let dir = TempDir::new("bad_merge");
    let spec = spec_file();
    let spec = spec.to_str().unwrap();
    let a = dir.path("a.json");
    assert_ok(
        &prestage(&["shard", "--spec", spec, "--cells", "0..3", "--out", &a]),
        "shard A",
    );
    // One shard alone: 5 cells missing.
    let out = prestage(&["merge", &a]);
    assert!(!out.status.success(), "merge of a partial grid must fail");
    // The same shard twice: duplicate cells.
    let out = prestage(&["merge", &a, &a]);
    assert!(!out.status.success(), "merge of overlapping shards must fail");
    // An out-of-range shard request fails up front.
    let out = prestage(&["shard", "--spec", spec, "--cells", "6..9", "--out", &a]);
    assert!(!out.status.success());
    assert!(
        String::from_utf8_lossy(&out.stderr).contains("invalid for this spec"),
        "range error should name the grid size"
    );
}

/// Malformed shard *sets* are refused by name — the stderr must identify
/// the offending files and cell ranges, not die in a merge panic.
#[test]
fn merge_names_the_offending_shards_and_ranges() {
    let dir = TempDir::new("named_refusals");
    let spec = spec_file();
    let spec = spec.to_str().unwrap();
    let a = dir.path("a.json");
    let c = dir.path("c.json");
    assert_ok(
        &prestage(&["shard", "--spec", spec, "--cells", "0..3", "--out", &a]),
        "shard A",
    );
    assert_ok(
        &prestage(&["shard", "--spec", spec, "--cells", "2..8", "--out", &c]),
        "shard C",
    );

    // Overlap: cells 2..3 are claimed twice; both files and ranges named.
    let out = prestage(&["merge", &a, &c]);
    assert!(!out.status.success());
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        stderr.contains("overlap") && stderr.contains("0..3") && stderr.contains("2..8"),
        "overlap refusal must name both ranges: {stderr}"
    );

    // Duplicate shards are just total overlap; same named refusal.
    let out = prestage(&["merge", &a, &a]);
    assert!(!out.status.success());
    assert!(
        String::from_utf8_lossy(&out.stderr).contains("overlap"),
        "duplicate-shard refusal should name the overlap"
    );

    // Coverage gap: the missing cell range is named.
    let out = prestage(&["merge", &a]);
    assert!(!out.status.success());
    assert!(
        String::from_utf8_lossy(&out.stderr).contains("no shard covers cells 3..8"),
        "gap refusal must name the uncovered range: {}",
        String::from_utf8_lossy(&out.stderr)
    );

    // A shard whose range runs past the grid: named with the grid size.
    let oob = dir.path("oob.json");
    let text = std::fs::read_to_string(&a).unwrap();
    std::fs::write(
        &oob,
        text.replace("\"start\": 0", "\"start\": 6").replace("\"end\": 3", "\"end\": 9"),
    )
    .unwrap();
    let out = prestage(&["merge", &oob]);
    assert!(!out.status.success());
    assert!(
        String::from_utf8_lossy(&out.stderr).contains("the grid has only 8 cells"),
        "out-of-range refusal must name the grid size: {}",
        String::from_utf8_lossy(&out.stderr)
    );

    // An inverted cell range is refused by the shard loader itself
    // (fuzz-harness regression: it used to parse clean).
    let inv = dir.path("inverted.json");
    let text = std::fs::read_to_string(&a).unwrap();
    std::fs::write(
        &inv,
        text.replace("\"start\": 0", "\"start\": 5").replace("\"end\": 3", "\"end\": 2"),
    )
    .unwrap();
    let out = prestage(&["merge", &inv]);
    assert!(!out.status.success());
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        stderr.contains("inverted") && stderr.contains("inverted.json"),
        "inverted-range refusal must name the file and defect: {stderr}"
    );
}

/// The acceptance property for the pluggable mechanisms, proven on the
/// real binary: a spec carrying `"prefetcher": "mana"` (and `"progmap"`)
/// shards across two processes and merges back byte-identically to the
/// single-process run.
#[test]
fn mechanism_specs_shard_and_merge_byte_identically() {
    let base = std::fs::read_to_string(spec_file()).unwrap();
    for id in ["mana", "progmap"] {
        let dir = TempDir::new(&format!("mech_{id}"));
        let spec = dir.path("spec.json");
        std::fs::write(
            &spec,
            base.replace("\"prefetcher\": null", &format!("\"prefetcher\": \"{id}\"")),
        )
        .unwrap();
        let a = dir.path("a.json");
        let b = dir.path("b.json");
        let merged = dir.path("merged.json");
        let full = dir.path("full.json");
        assert_ok(
            &prestage(&["shard", "--spec", &spec, "--cells", "0..3", "--out", &a]),
            &format!("{id} shard A"),
        );
        assert_ok(
            &prestage(&["shard", "--spec", &spec, "--cells", "3..8", "--out", &b]),
            &format!("{id} shard B"),
        );
        assert_ok(&prestage(&["merge", &b, &a, "--out", &merged]), &format!("{id} merge"));
        assert_ok(&prestage(&["run", &spec, "--out", &full]), &format!("{id} run"));
        let merged_bytes = std::fs::read(&merged).unwrap();
        let full_bytes = std::fs::read(&full).unwrap();
        assert!(!merged_bytes.is_empty());
        assert_eq!(
            merged_bytes, full_bytes,
            "{id}: merged shard output differs from the single-process run"
        );
        // And the artifact embeds the mechanism (experiment identity).
        assert!(
            String::from_utf8_lossy(&full_bytes).contains(&format!("\"prefetcher\": \"{id}\"")),
            "{id}: artifact spec lost the prefetcher field"
        );
    }
}

/// Shards produced under different prefetcher ids describe different
/// experiments: merging them must be refused, like any other spec
/// mismatch.
#[test]
fn merge_refuses_shards_from_different_prefetchers() {
    let dir = TempDir::new("mixed_prefetcher");
    let base = std::fs::read_to_string(spec_file()).unwrap();
    let mana_spec = dir.path("mana.json");
    std::fs::write(
        &mana_spec,
        base.replace("\"prefetcher\": null", "\"prefetcher\": \"mana\""),
    )
    .unwrap();
    let a = dir.path("a.json");
    let b = dir.path("b.json");
    let spec = spec_file();
    assert_ok(
        &prestage(&["shard", "--spec", spec.to_str().unwrap(), "--cells", "0..3", "--out", &a]),
        "default shard",
    );
    assert_ok(
        &prestage(&["shard", "--spec", &mana_spec, "--cells", "3..8", "--out", &b]),
        "mana shard",
    );
    let out = prestage(&["merge", &a, &b]);
    assert!(
        !out.status.success(),
        "merging shards of different prefetchers must fail"
    );
    assert!(
        String::from_utf8_lossy(&out.stderr).contains("different spec"),
        "refusal should name the spec mismatch"
    );
}

#[test]
fn cli_rejects_unknown_prefetcher_ids_listing_the_valid_set() {
    let dir = TempDir::new("bad_prefetcher");
    let bad = dir.path("bad.json");
    let text = std::fs::read_to_string(spec_file())
        .unwrap()
        .replace("\"prefetcher\": null", "\"prefetcher\": \"mnaa\"");
    std::fs::write(&bad, text).unwrap();
    let out = prestage(&["run", &bad]);
    assert!(!out.status.success());
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        stderr.contains("unknown prefetcher \"mnaa\"")
            && stderr.contains("mana")
            && stderr.contains("progmap")
            && stderr.contains("clgp"),
        "stderr must name the typo and the valid mechanism ids: {stderr}"
    );
}

#[test]
fn cli_surfaces_spec_errors_loudly() {
    let dir = TempDir::new("bad_spec");
    let bad = dir.path("bad.json");
    let text = std::fs::read_to_string(spec_file())
        .unwrap()
        .replace("\"gzip\"", "\"gzpi\"");
    std::fs::write(&bad, text).unwrap();
    let out = prestage(&["run", &bad]);
    assert!(!out.status.success());
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        stderr.contains("unknown benchmark \"gzpi\"") && stderr.contains("twolf"),
        "stderr must name the typo and the valid set: {stderr}"
    );
    // Unknown figure names list the declared figures.
    let out = prestage(&["run", "fig99"]);
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("fig5b"));
}
