//! Integration test of the `prestage` CLI's scale-out path: two disjoint
//! shards run as separate OS processes, merged, and diffed byte-for-byte
//! against a single-process `prestage run` of the same spec — the
//! acceptance property of the sharding redesign.

use std::path::{Path, PathBuf};
use std::process::{Command, Output};

fn spec_file() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("specs/ci_shard.json")
}

/// Run the real binary with a scrubbed `PRESTAGE_*` environment (file
/// specs ignore it by design, but the test must not depend on that).
fn prestage(args: &[&str]) -> Output {
    let mut cmd = Command::new(env!("CARGO_BIN_EXE_prestage"));
    for var in [
        "PRESTAGE_WARMUP",
        "PRESTAGE_MEASURE",
        "PRESTAGE_SEED",
        "PRESTAGE_EXEC_SEED",
        "PRESTAGE_BENCH",
        "PRESTAGE_THREADS",
        "PRESTAGE_RESULTS_DIR",
    ] {
        cmd.env_remove(var);
    }
    cmd.args(args).output().expect("spawn prestage")
}

fn assert_ok(out: &Output, what: &str) {
    assert!(
        out.status.success(),
        "{what} failed:\nstdout: {}\nstderr: {}",
        String::from_utf8_lossy(&out.stdout),
        String::from_utf8_lossy(&out.stderr)
    );
}

struct TempDir(PathBuf);

impl TempDir {
    fn new(tag: &str) -> TempDir {
        let dir = std::env::temp_dir().join(format!("prestage_{tag}_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        TempDir(dir)
    }

    fn path(&self, name: &str) -> String {
        self.0.join(name).to_string_lossy().into_owned()
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

#[test]
fn two_process_shard_merge_equals_single_process_run_byte_exactly() {
    let dir = TempDir::new("shard_merge");
    let spec = spec_file();
    let spec = spec.to_str().unwrap();
    // specs/ci_shard.json: 2 presets x 2 sizes x 2 benches = 8 cells.
    // Deliberately uneven split; merge order deliberately reversed.
    let a = dir.path("a.json");
    let b = dir.path("b.json");
    let merged = dir.path("merged.json");
    let full = dir.path("full.json");
    assert_ok(
        &prestage(&["shard", "--spec", spec, "--cells", "0..3", "--out", &a]),
        "shard A",
    );
    assert_ok(
        &prestage(&["shard", "--spec", spec, "--cells", "3..8", "--out", &b]),
        "shard B",
    );
    assert_ok(&prestage(&["merge", &b, &a, "--out", &merged]), "merge");
    assert_ok(&prestage(&["run", spec, "--out", &full]), "run");

    let merged_bytes = std::fs::read(&merged).unwrap();
    let full_bytes = std::fs::read(&full).unwrap();
    assert!(!merged_bytes.is_empty());
    assert_eq!(
        merged_bytes, full_bytes,
        "merged shard output differs from the single-process run"
    );
}

#[test]
fn merge_refuses_incomplete_or_overlapping_coverage() {
    let dir = TempDir::new("bad_merge");
    let spec = spec_file();
    let spec = spec.to_str().unwrap();
    let a = dir.path("a.json");
    assert_ok(
        &prestage(&["shard", "--spec", spec, "--cells", "0..3", "--out", &a]),
        "shard A",
    );
    // One shard alone: 5 cells missing.
    let out = prestage(&["merge", &a]);
    assert!(!out.status.success(), "merge of a partial grid must fail");
    // The same shard twice: duplicate cells.
    let out = prestage(&["merge", &a, &a]);
    assert!(!out.status.success(), "merge of overlapping shards must fail");
    // An out-of-range shard request fails up front.
    let out = prestage(&["shard", "--spec", spec, "--cells", "6..9", "--out", &a]);
    assert!(!out.status.success());
    assert!(
        String::from_utf8_lossy(&out.stderr).contains("invalid for this spec"),
        "range error should name the grid size"
    );
}

#[test]
fn cli_surfaces_spec_errors_loudly() {
    let dir = TempDir::new("bad_spec");
    let bad = dir.path("bad.json");
    let text = std::fs::read_to_string(spec_file())
        .unwrap()
        .replace("\"gzip\"", "\"gzpi\"");
    std::fs::write(&bad, text).unwrap();
    let out = prestage(&["run", &bad]);
    assert!(!out.status.success());
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        stderr.contains("unknown benchmark \"gzpi\"") && stderr.contains("twolf"),
        "stderr must name the typo and the valid set: {stderr}"
    );
    // Unknown figure names list the declared figures.
    let out = prestage(&["run", "fig99"]);
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("fig5b"));
}
