//! Integration test of the `prestage` CLI's trace path, through the real
//! binary: record a spec's traces, inspect one, replay the spec — whole
//! and sharded across two processes — and hold every artifact
//! byte-identical to the live-generation run (the acceptance property of
//! the record-once/replay-everywhere redesign).  Mirrors
//! `tests/cli_shard_merge.rs`.

use std::path::{Path, PathBuf};
use std::process::{Command, Output};

fn spec_file() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("specs/ci_shard.json")
}

/// Run the real binary with a scrubbed `PRESTAGE_*` environment (file
/// specs ignore it by design, but the test must not depend on that).
fn prestage(args: &[&str]) -> Output {
    let mut cmd = Command::new(env!("CARGO_BIN_EXE_prestage"));
    for var in [
        "PRESTAGE_WARMUP",
        "PRESTAGE_MEASURE",
        "PRESTAGE_SEED",
        "PRESTAGE_EXEC_SEED",
        "PRESTAGE_BENCH",
        "PRESTAGE_THREADS",
        "PRESTAGE_RESULTS_DIR",
    ] {
        cmd.env_remove(var);
    }
    cmd.args(args).output().expect("spawn prestage")
}

fn assert_ok(out: &Output, what: &str) -> String {
    assert!(
        out.status.success(),
        "{what} failed:\nstdout: {}\nstderr: {}",
        String::from_utf8_lossy(&out.stdout),
        String::from_utf8_lossy(&out.stderr)
    );
    format!(
        "{}{}",
        String::from_utf8_lossy(&out.stdout),
        String::from_utf8_lossy(&out.stderr)
    )
}

struct TempDir(PathBuf);

impl TempDir {
    fn new(tag: &str) -> TempDir {
        let dir = std::env::temp_dir().join(format!("prestage_{tag}_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        TempDir(dir)
    }

    fn path(&self, name: &str) -> String {
        self.0.join(name).to_string_lossy().into_owned()
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

/// The committed CI spec must be canonical bytes (parse → re-serialize is
/// identity): the CI replay job rewrites it with `sed`, which only works
/// if the file is exactly what the writer would emit.
#[test]
fn ci_shard_spec_is_canonical_and_live() {
    let text = std::fs::read_to_string(spec_file()).unwrap();
    let spec = prestage_sim::ExperimentSpec::from_json(&text).unwrap();
    assert_eq!(spec.to_json(), text, "specs/ci_shard.json is not canonical");
    assert_eq!(spec.trace, None, "the committed CI spec must generate live");
    assert!(text.contains("\"trace\": null"), "sed anchor missing");
}

/// Write a replay twin of the CI spec pointing at `dir`.
fn replay_spec_into(dir: &TempDir, traces: &str) -> String {
    let text = std::fs::read_to_string(spec_file()).unwrap();
    let replaced = text.replace(
        "\"trace\": null",
        &format!("\"trace\": {{\"dir\": {traces:?}}}"),
    );
    assert_ne!(text, replaced, "trace anchor not found in ci_shard.json");
    let path = dir.path("replay_spec.json");
    std::fs::write(&path, replaced).unwrap();
    path
}

#[test]
fn record_info_replay_run_and_shards_match_live_byte_exactly() {
    let dir = TempDir::new("cli_trace");
    let spec = spec_file();
    let spec = spec.to_str().unwrap();
    let traces = dir.path("traces");

    // Record: one v2 trace per benchmark of the spec.
    let log = assert_ok(
        &prestage(&["trace", "record", spec, "--out", &traces]),
        "trace record",
    );
    assert!(log.contains("recorded 2 trace(s)"), "{log}");
    let gzip_trace = format!("{traces}/gzip-w42-x42.pstr");
    assert!(Path::new(&gzip_trace).exists());
    assert!(Path::new(&format!("{traces}/mcf-w42-x42.pstr")).exists());

    // Info: the header self-describes and every chunk CRC verifies.
    let info = assert_ok(&prestage(&["trace", "info", &gzip_trace]), "trace info");
    for needle in ["PSTR v2", "profile:       gzip", "workload_seed: 42", "verified:"] {
        assert!(info.contains(needle), "info output missing {needle:?}:\n{info}");
    }

    // Replay the spec — whole run, then two disjoint shard processes.
    let replay_spec = replay_spec_into(&dir, &traces);
    let replayed = dir.path("replayed.json");
    let live = dir.path("live.json");
    assert_ok(&prestage(&["run", &replay_spec, "--out", &replayed]), "replay run");
    assert_ok(&prestage(&["run", spec, "--out", &live]), "live run");
    let replayed_bytes = std::fs::read(&replayed).unwrap();
    let live_bytes = std::fs::read(&live).unwrap();
    assert!(!replayed_bytes.is_empty());
    assert_eq!(
        replayed_bytes, live_bytes,
        "replayed grid artifact differs from the live-generation run"
    );

    // Shards replay too (each process re-opens the same trace files), and
    // a replay shard merges with a *live* shard: the committed-path source
    // is execution detail, not experiment identity.
    let a = dir.path("a.json");
    let b = dir.path("b.json");
    let merged = dir.path("merged.json");
    assert_ok(
        &prestage(&["shard", "--spec", &replay_spec, "--cells", "0..5", "--out", &a]),
        "replay shard A",
    );
    assert_ok(
        &prestage(&["shard", "--spec", spec, "--cells", "5..8", "--out", &b]),
        "live shard B",
    );
    assert_ok(&prestage(&["merge", &b, &a, "--out", &merged]), "merge");
    assert_eq!(
        std::fs::read(&merged).unwrap(),
        live_bytes,
        "mixed replay/live shard merge differs from the single-process run"
    );
}

#[test]
fn replay_failures_are_loud_and_name_the_cure() {
    let dir = TempDir::new("cli_trace_bad");

    // Replaying before recording: the error names the record command.
    let replay_spec = replay_spec_into(&dir, &dir.path("missing"));
    let out = prestage(&["run", &replay_spec]);
    assert!(!out.status.success());
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        stderr.contains("prestage trace record"),
        "error must point at the record command: {stderr}"
    );

    // A corrupted trace is refused by `info` with the chunk named.
    let traces = dir.path("traces");
    let spec = spec_file();
    assert_ok(
        &prestage(&["trace", "record", spec.to_str().unwrap(), "--out", &traces]),
        "trace record",
    );
    let victim = format!("{traces}/mcf-w42-x42.pstr");
    let mut bytes = std::fs::read(&victim).unwrap();
    // Flip a byte early in the first chunk's payload: replay streams the
    // file and only verifies what it reads, so corruption must sit inside
    // the replayed prefix to be observable.
    bytes[100] ^= 0xFF;
    std::fs::write(&victim, &bytes).unwrap();
    let out = prestage(&["trace", "info", &victim]);
    assert!(!out.status.success(), "info must fail on a corrupt trace");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("CRC mismatch"), "{stderr}");

    // And a replay over it dies loudly rather than producing numbers.
    let out = prestage(&["run", &replay_spec_into(&dir, &traces)]);
    assert!(!out.status.success(), "run over a corrupt trace must fail");
}
