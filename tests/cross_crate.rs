//! Cross-crate consistency checks: the substrates must agree with each
//! other (latencies, trace replay, predictor-vs-trace segmentation).

use fetch_prestaging::bpred::{FetchBlockPredictor, StreamPredictor, MAX_STREAM_INSTS};
use fetch_prestaging::cacti::{latency_cycles, CacheGeometry, TechNode};
use fetch_prestaging::core::FrontendConfig;
use prestage_workload::{build, specint2000, trace_io, TraceGenerator};

#[test]
fn frontend_latencies_agree_with_cacti_for_every_sweep_point() {
    for tech in [TechNode::T090, TechNode::T045] {
        for shift in 8..=16 {
            let size = 1usize << shift;
            let cfg = FrontendConfig::base(tech, size);
            let geom = CacheGeometry::new(size, 64, 2, 1);
            assert_eq!(cfg.l1_latency(), latency_cycles(&geom, tech));
        }
    }
}

#[test]
fn trace_streams_respect_the_fetch_block_cap() {
    for p in specint2000().iter().take(4) {
        let w = build(p, 11);
        let mut gen = TraceGenerator::new(&w, 3);
        let mut buf = Vec::new();
        for _ in 0..2_000 {
            let s = gen.next_stream(&mut buf);
            assert!(s.len >= 1 && s.len <= MAX_STREAM_INSTS, "{}", p.name);
            assert_eq!(s.len as usize, buf.len());
        }
    }
}

#[test]
fn trace_roundtrips_through_binary_io() {
    let p = &specint2000()[0];
    let w = build(p, 11);
    let mut gen = TraceGenerator::new(&w, 3);
    let insts = gen.take_insts(25_000);
    let mut bytes = Vec::new();
    trace_io::write_trace(&mut bytes, &insts).unwrap();
    let back = trace_io::read_trace(&bytes[..]).unwrap();
    assert_eq!(insts, back);
}

#[test]
fn every_trace_pc_is_in_the_dictionary() {
    // The wrong-path machinery depends on the dictionary covering the
    // whole trace.
    for p in specint2000().iter().take(3) {
        let w = build(p, 5);
        let mut gen = TraceGenerator::new(&w, 5);
        for di in gen.take_insts(20_000) {
            let st = w
                .program
                .inst_at(di.pc)
                .unwrap_or_else(|| panic!("{}: unmapped pc {:#x}", p.name, di.pc));
            assert_eq!(st.op, di.op);
            // The (block, idx) fast path agrees with the pc lookup.
            let by_idx = w.program.block(di.block).insts[di.idx as usize];
            assert_eq!(by_idx.pc, di.pc);
        }
    }
}

#[test]
fn predictor_learns_the_trace_it_is_trained_on() {
    // Stream-level accuracy after online training must be far above the
    // static fallback alone for a predictable benchmark.
    let p = specint2000()
        .into_iter()
        .find(|p| p.name == "eon")
        .unwrap();
    let w = build(&p, 42);
    let mut gen = TraceGenerator::new(&w, 7);
    let mut pred = StreamPredictor::paper_default();
    let mut buf = Vec::new();
    let (mut correct, mut total) = (0u64, 0u64);
    let mut insts = 0u64;
    while insts < 400_000 {
        let s = gen.next_stream(&mut buf);
        insts += s.len as u64;
        let tok = pred.token(s.start);
        let pr = pred.predict(s.start, &w.program);
        let ok = pr.stream.same_flow(&s);
        pred.train_with_token(&tok, &s, ok);
        // Skip the cold half for the accuracy measurement.
        if insts > 200_000 {
            total += 1;
            correct += ok as u64;
        }
    }
    let acc = correct as f64 / total as f64;
    assert!(acc > 0.80, "warmed stream accuracy only {acc:.3}");
}

#[test]
fn one_cycle_buffer_sizing_matches_the_node() {
    assert_eq!(FrontendConfig::one_cycle_buffer_lines(TechNode::T090) * 64, 512);
    assert_eq!(FrontendConfig::one_cycle_buffer_lines(TechNode::T045) * 64, 256);
}
