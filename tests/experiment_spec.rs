//! Cross-crate tests of the `ExperimentSpec` API: the JSON round-trip
//! property over randomized specs, the committed golden spec files for
//! fig1/fig6/fig8, and the guarantee that spec-driven execution
//! reproduces the raw runner path bit-exactly.

use prestage_bench::figures;
use prestage_cacti::TechNode;
use prestage_sim::{
    try_run_spec, ConfigPreset, Engine, ExperimentSpec, ITlbConfig, InsertionPolicy,
    PredictorKind, PrefetcherKind, TraceSource, L1_SIZES,
};
use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::path::PathBuf;

/// A structurally arbitrary spec (not necessarily *valid* — the
/// round-trip property holds for every representable value, including
/// seeds above 2^53 and non-SPECint bench names).
fn random_spec(seed: u64) -> ExperimentSpec {
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut presets: Vec<ConfigPreset> = ConfigPreset::all()
        .into_iter()
        .filter(|_| rng.gen_bool(0.5))
        .collect();
    if presets.is_empty() {
        presets.push(ConfigPreset::Clgp);
    }
    let size_pool: Vec<usize> = L1_SIZES.iter().copied().chain([1536, 2560]).collect();
    let mut l1_sizes: Vec<usize> = size_pool
        .iter()
        .copied()
        .filter(|_| rng.gen_bool(0.4))
        .collect();
    if l1_sizes.is_empty() {
        l1_sizes.push(4 << 10);
    }
    if rng.gen_bool(0.3) {
        l1_sizes.reverse();
    }
    let bench = if rng.gen_bool(0.5) {
        None
    } else {
        let names = ["gzip", "gcc", "mcf", "crafty", "eon", "not-a-benchmark"];
        let mut picked: Vec<String> = names
            .iter()
            .filter(|_| rng.gen_bool(0.5))
            .map(|s| s.to_string())
            .collect();
        if picked.is_empty() {
            picked.push("twolf".to_string());
        }
        Some(picked)
    };
    ExperimentSpec {
        presets,
        tech: TechNode::all()[rng.gen_range(0..5usize)],
        l1_sizes,
        bench,
        warmup_insts: rng.gen::<u64>(),
        measure_insts: rng.gen::<u64>(),
        workload_seed: rng.gen::<u64>(),
        exec_seed: rng.gen::<u64>(),
        threads: if rng.gen_bool(0.5) {
            None
        } else {
            Some(rng.gen_range(1..128usize))
        },
        predictor: if rng.gen_bool(0.5) {
            PredictorKind::Stream
        } else {
            PredictorKind::Gshare
        },
        trace: if rng.gen_bool(0.6) {
            None
        } else {
            // Paths with spaces, dots and unicode must all survive the
            // JSON escape round-trip.
            let dirs = ["traces", "a b/c", "../rel", "трассы", "t\"q"];
            Some(TraceSource {
                dir: dirs[rng.gen_range(0..dirs.len())].to_string(),
            })
        },
        prefetcher: if rng.gen_bool(0.5) {
            None
        } else {
            let kinds = PrefetcherKind::all();
            Some(kinds[rng.gen_range(0..kinds.len())])
        },
        itlb: if rng.gen_bool(0.5) {
            None
        } else {
            // Representable, not necessarily valid: the round-trip
            // property covers degenerate geometries too.
            Some(ITlbConfig {
                entries: rng.gen_range(0..4096usize),
                assoc: rng.gen_range(0..64usize),
                page_bytes: rng.gen::<u64>(),
                miss_cycles: rng.gen::<u64>(),
            })
        },
        insertion: if rng.gen_bool(0.5) {
            None
        } else {
            let all = InsertionPolicy::all();
            Some(all[rng.gen_range(0..all.len())])
        },
    }
}

proptest! {
    /// Any representable spec survives JSON serialization unchanged, and
    /// serialization is canonical (re-serializing the parse is
    /// byte-identical).
    #[test]
    fn spec_json_roundtrip(seed in 0u64..5_000) {
        let spec = random_spec(seed);
        let text = spec.to_json();
        let back = ExperimentSpec::from_json(&text)
            .unwrap_or_else(|e| panic!("seed {seed}: {e}\n{text}"));
        prop_assert_eq!(&back, &spec);
        prop_assert_eq!(back.to_json(), text);
    }
}

fn golden_path(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("specs")
        .join(format!("{name}.json"))
}

/// The committed golden spec files are exactly the declared figure specs,
/// byte-for-byte (regenerate with `prestage spec <name> --out specs/<name>.json`
/// after an intentional figure change).
#[test]
fn golden_spec_files_match_the_figure_declarations() {
    for name in ["fig1", "fig6", "fig8"] {
        let path = golden_path(name);
        let text = std::fs::read_to_string(&path)
            .unwrap_or_else(|e| panic!("read {}: {e}", path.display()));
        let golden = ExperimentSpec::from_json(&text)
            .unwrap_or_else(|e| panic!("{name}: {e}"));
        let declared = (figures::by_name(name)
            .unwrap_or_else(|| panic!("figure {name} not declared"))
            .make_spec)();
        assert_eq!(golden, declared, "{name}: golden file drifted from declaration");
        assert_eq!(declared.to_json(), text, "{name}: golden file is not canonical");
    }
}

/// Spec-driven execution of the golden figures reproduces the raw engine
/// bit-exactly: every counter of every cell, not just headline IPC.
/// (Run lengths and the bench set are shrunk through the spec itself so
/// the test stays fast; the execution path is identical.)
#[test]
fn golden_specs_reproduce_the_engine_bit_exactly() {
    for name in ["fig1", "fig6", "fig8"] {
        let text = std::fs::read_to_string(golden_path(name)).unwrap();
        let golden = ExperimentSpec::from_json(&text).unwrap();
        let spec = ExperimentSpec {
            l1_sizes: golden.l1_sizes[..golden.l1_sizes.len().min(2)].to_vec(),
            bench: Some(vec!["gzip".into(), "mcf".into()]),
            warmup_insts: 1_000,
            measure_insts: 5_000,
            ..golden
        };
        let rows = try_run_spec(&spec).unwrap_or_else(|e| panic!("{name}: {e}"));
        let workloads = spec.build_workloads().unwrap();
        for (pi, &preset) in spec.presets.iter().enumerate() {
            for (si, &l1) in spec.l1_sizes.iter().enumerate() {
                for (wi, w) in workloads.iter().enumerate() {
                    let direct =
                        Engine::new(spec.sim_config(preset, l1), w, spec.exec_seed).run();
                    let (bench_name, stats) = &rows[pi][si].per_bench[wi];
                    assert_eq!(bench_name, w.profile.name, "{name}");
                    assert_eq!(
                        *stats, direct,
                        "{name}: {} @ {l1}B / {} diverged from the raw engine",
                        preset.label(),
                        w.profile.name
                    );
                }
            }
        }
    }
}

/// The loud-failure satellite: a typo'd benchmark name aborts with the
/// valid names instead of silently shrinking the workload set.
#[test]
fn unknown_bench_name_is_a_loud_error_through_the_whole_stack() {
    let spec = ExperimentSpec {
        bench: Some(vec!["gzip".into(), "craftey".into()]),
        ..ExperimentSpec::default()
    };
    let err = spec.validate().unwrap_err();
    assert!(err.contains("unknown benchmark \"craftey\""), "{err}");
    assert!(err.contains("crafty"), "error must list the valid names: {err}");
    let err = try_run_spec(&spec).unwrap_err();
    assert!(err.contains("unknown benchmark"), "{err}");
}
