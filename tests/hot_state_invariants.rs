//! Invariant coverage for the flattened hot-path state (PR 9).
//!
//! The raw-speed campaign replaced the engine's per-cycle `BTreeMap`s with
//! flat structures — a block ring, a route table, a line-slot ring with a
//! prefetch cursor, a `u128` waiting bitmap in the RUU — whose correctness
//! rests on structural invariants (contiguous seqs, set-only flags,
//! bounded occupancy) instead of a map's key discipline.  The engine
//! checks those invariants with `debug_assert!`s every cycle and at end of
//! cell; this suite *drives* those checks through mispredict-heavy runs of
//! every preset so a violation fails a normal `cargo test` (dev profile,
//! `debug_assertions` on) loudly rather than corrupting results silently.
//!
//! Covered per run, every cycle: live blocks bounded by queue + in-flight
//! occupancy; routes bounded by outstanding L2 requests; the waiting
//! bitmap shifted exactly with commits.  Covered at redirect: no
//! speculative block/decode state survives the flush.  Covered at end of
//! cell: the hot tables drained back to their steady-state bounds.

use fetch_prestaging::cacti::TechNode;
use fetch_prestaging::sim::{ConfigPreset, Engine, SimConfig};
use fetch_prestaging::workload::{build_workload, by_name};

/// Every preset, run long enough to exercise thousands of cycles of the
/// per-cycle invariant checks plus the end-of-cell drain check.
#[test]
fn per_cycle_invariants_hold_across_presets() {
    let profile = by_name("crafty").expect("known benchmark");
    let w = build_workload(&profile, 42);
    for preset in [
        ConfigPreset::Base,
        ConfigPreset::BasePipelined,
        ConfigPreset::Fdp,
        ConfigPreset::FdpL0,
        ConfigPreset::Clgp,
        ConfigPreset::ClgpL0,
    ] {
        let cfg = SimConfig::preset(preset, TechNode::T045, 4 << 10).with_insts(1_000, 8_000);
        let stats = Engine::new(cfg, &w, 7).run();
        assert!(
            stats.committed >= 8_000,
            "{}: committed {} of 8000 measured instructions",
            preset.label(),
            stats.committed
        );
        // The redirect-flush invariant is only exercised if the run
        // actually mispredicts; crafty's branch mix guarantees it does.
        assert!(
            stats.redirects > 0,
            "{}: no redirects — the post-redirect drain invariant never ran",
            preset.label()
        );
    }
}

/// The invariants must hold under RAS-heavy and pattern-heavy control flow
/// too (deep call stacks stress checkpoint/restore; gcc's branch mix
/// stresses the wrong-path fetch state the flush invariant guards).
#[test]
fn invariants_hold_under_mispredict_pressure() {
    for bench in ["gcc", "gzip", "perlbmk"] {
        let profile = by_name(bench).expect("known benchmark");
        let w = build_workload(&profile, 42);
        // Small L1 + FDP: maximum prefetch traffic, maximum wrong-path
        // fetches, so the route table and pre-buffer churn hardest.
        let cfg =
            SimConfig::preset(ConfigPreset::FdpL0, TechNode::T045, 1 << 10).with_insts(500, 5_000);
        let stats = Engine::new(cfg, &w, 7).run();
        assert!(
            stats.committed >= 5_000 && stats.redirects > 0,
            "{bench}: committed {} redirects {}",
            stats.committed,
            stats.redirects
        );
    }
}

/// This suite's value is the `debug_assert!`s it drives.  Under
/// `cargo test` (dev profile) they are compiled in and this marker
/// records that fact; under `--release` the checks are compiled out, the
/// suite degrades to a does-it-run smoke test, and this marker is
/// (visibly) absent from the test list rather than lying about coverage.
#[cfg(debug_assertions)]
#[test]
fn debug_assertions_are_active_so_invariants_are_checked() {}
