//! End-to-end tests of the fetch-path i-TLB and the prefetch insertion
//! policies, through the `ExperimentSpec` surface.
//!
//! The companion invariant — `itlb: null` specs are bit-identical to the
//! pre-TLB engine for all six mechanisms — is pinned by
//! `tests/engine_equality.rs` against goldens generated before the TLB
//! existed.  This file covers the *enabled* side: a TLB small enough to
//! miss must actually perturb timing, translation must charge every
//! mechanism, wrong-path translations must be unwound by the redirect
//! checkpoint machinery identically in live and replay modes, and the
//! insertion override must reach the fill path.

use fetch_prestaging::sim::{
    grid_output, try_run_spec, ConfigPreset, ExperimentSpec, ITlbConfig, InsertionPolicy,
    PrefetcherKind, TraceSource,
};
use fetch_prestaging::workload;

/// One benchmark with a code footprint far beyond a handful of pages, so
/// a small-page TLB sees real capacity pressure.
fn base_spec() -> ExperimentSpec {
    ExperimentSpec {
        presets: vec![ConfigPreset::FdpL0],
        l1_sizes: vec![1 << 10],
        bench: Some(vec!["gcc".into()]),
        warmup_insts: 1_000,
        measure_insts: 8_000,
        threads: Some(1),
        ..ExperimentSpec::default()
    }
}

fn tiny_tlb() -> ITlbConfig {
    // Two 256-byte pages of reach against a multi-KB instruction
    // footprint: guaranteed steady-state misses.
    ITlbConfig {
        entries: 2,
        assoc: 1,
        page_bytes: 256,
        miss_cycles: 25,
    }
}

/// The "TLB actually misses" guard: a tiny TLB must cost cycles relative
/// to `itlb: null`.  If this fails, translation is wired up but free —
/// the exact bug the bit-exactness discipline could otherwise hide.
#[test]
fn tiny_itlb_perturbs_timing() {
    let off = try_run_spec(&base_spec()).expect("valid spec");
    let on_spec = ExperimentSpec {
        itlb: Some(tiny_tlb()),
        ..base_spec()
    };
    let on = try_run_spec(&on_spec).expect("valid spec");
    let (c_off, c_on) = (
        off[0][0].per_bench[0].1.cycles,
        on[0][0].per_bench[0].1.cycles,
    );
    assert!(
        c_on > c_off,
        "a 2-entry, 256 B-page i-TLB with a 25-cycle walk must slow the run: \
         {c_on} cycles with TLB vs {c_off} without"
    );
}

/// Every mechanism pays for translation: the TLB-on run is never faster,
/// and each mechanism still makes forward progress (the related-work
/// TLB-on figure in miniature).
#[test]
fn all_six_mechanisms_run_and_pay_under_translation() {
    for kind in PrefetcherKind::all() {
        let spec_off = ExperimentSpec {
            presets: vec![ConfigPreset::Fdp],
            prefetcher: Some(kind),
            ..base_spec()
        };
        let spec_on = ExperimentSpec {
            itlb: Some(tiny_tlb()),
            ..spec_off.clone()
        };
        let off = try_run_spec(&spec_off).expect("valid spec");
        let on = try_run_spec(&spec_on).expect("valid spec");
        let (c_off, c_on) = (
            off[0][0].per_bench[0].1.cycles,
            on[0][0].per_bench[0].1.cycles,
        );
        assert!(
            on[0][0].hmean_ipc() > 0.05,
            "{} wedged under translation",
            kind.id()
        );
        assert!(
            c_on > c_off,
            "{} does not pay for translation: {c_on} vs {c_off} cycles",
            kind.id()
        );
    }
}

/// Wrong-path translations are unwound: a TLB-on run must be bit-exact
/// between live generation and trace replay (the two paths redirect at
/// the same points but speculate through different machinery), and
/// deterministic across repeat runs.
#[test]
fn tlb_state_is_checkpointed_across_redirects() {
    let spec = ExperimentSpec {
        itlb: Some(tiny_tlb()),
        ..base_spec()
    };
    let live = grid_output(&spec, &try_run_spec(&spec).expect("valid spec"));
    let again = grid_output(&spec, &try_run_spec(&spec).expect("valid spec"));
    assert_eq!(live, again, "TLB-on run is not deterministic");

    let scratch = std::env::temp_dir().join(format!("prestage-itlb-{}", std::process::id()));
    std::fs::create_dir_all(&scratch).expect("scratch dir");
    for name in spec.bench_names().expect("valid spec") {
        let profile = workload::by_name(name).expect("known benchmark");
        let w = workload::build_workload(&profile, spec.workload_seed);
        let path = scratch.join(TraceSource::file_name(
            name,
            spec.workload_seed,
            spec.exec_seed,
        ));
        let file = std::fs::File::create(&path).expect("trace file");
        workload::record_trace(
            std::io::BufWriter::new(file),
            &w,
            spec.exec_seed,
            spec.trace_record_insts(),
            256,
        )
        .expect("trace recorded");
    }
    let replay_spec = ExperimentSpec {
        trace: Some(TraceSource {
            dir: scratch.display().to_string(),
        }),
        ..spec.clone()
    };
    let replayed = grid_output(&replay_spec, &try_run_spec(&replay_spec).expect("replay run"));
    let _ = std::fs::remove_dir_all(&scratch);
    assert_eq!(
        replayed, live,
        "TLB-on trace replay diverged from live generation"
    );
}

/// The spec-level `insertion` override reaches the fill path: forcing
/// prefetched lines to *bypass* the L0/L1 migration changes where later
/// fetches hit, while the explicit `mru` spelling is bit-identical to
/// each mechanism's default.
#[test]
fn insertion_override_reaches_the_fill_path() {
    // Compare the simulated stats, not the artifact text: the embedded
    // spec header legitimately differs in its `insertion` field.
    let default_rows = try_run_spec(&base_spec()).expect("valid spec");
    let mru = ExperimentSpec {
        insertion: Some(InsertionPolicy::Mru),
        ..base_spec()
    };
    let mru_rows = try_run_spec(&mru).expect("valid spec");
    assert_eq!(
        mru_rows[0][0].per_bench, default_rows[0][0].per_bench,
        "explicit mru insertion must be bit-identical to the FDP default"
    );
    let bypass = ExperimentSpec {
        insertion: Some(InsertionPolicy::Bypass),
        ..base_spec()
    };
    let bypass_rows = try_run_spec(&bypass).expect("valid spec");
    assert_ne!(
        bypass_rows[0][0].per_bench, default_rows[0][0].per_bench,
        "bypass insertion never reached the migration fill"
    );
}
