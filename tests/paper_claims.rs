//! End-to-end reproduction checks: the paper's *qualitative* claims must
//! hold at small scale on every run.  (EXPERIMENTS.md records the full-size
//! quantitative sweeps.)

use fetch_prestaging::prelude::*;
use fetch_prestaging::sim::run_config_over;
use prestage_workload::{build, specint2000, Workload};

/// A reduced benchmark set that exercises both big-code and loop-heavy
/// behaviour without making the test suite slow.
fn quick_workloads() -> Vec<Workload> {
    specint2000()
        .into_iter()
        .filter(|p| ["gcc", "vortex", "gzip", "twolf"].contains(&p.name))
        .map(|p| build(&p, 42))
        .collect()
}

fn hmean(preset: ConfigPreset, tech: TechNode, l1: usize, w: &[Workload]) -> f64 {
    let cfg = SimConfig::preset(preset, tech, l1).with_insts(30_000, 100_000);
    run_config_over(cfg, w, 7).hmean_ipc()
}

#[test]
fn clgp_beats_fdp_beats_baseline_at_small_caches() {
    let w = quick_workloads();
    let tech = TechNode::T045;
    let l1 = 4 << 10;
    let base = hmean(ConfigPreset::BaseL0, tech, l1, &w);
    let fdp = hmean(ConfigPreset::FdpL0, tech, l1, &w);
    let clgp = hmean(ConfigPreset::ClgpL0, tech, l1, &w);
    assert!(fdp > base, "FDP {fdp:.3} <= base {base:.3}");
    assert!(clgp > fdp, "CLGP {clgp:.3} <= FDP {fdp:.3}");
}

#[test]
fn clgp_is_insensitive_to_l1_size() {
    // §5.1: "CLGP almost saturates its performance at very small L1 cache
    // sizes" — the 256B-to-64KB spread must be small relative to the
    // baseline's.
    let w = quick_workloads();
    let tech = TechNode::T045;
    let clgp_small = hmean(ConfigPreset::ClgpL0, tech, 1 << 10, &w);
    let clgp_large = hmean(ConfigPreset::ClgpL0, tech, 64 << 10, &w);
    let ideal_small = hmean(ConfigPreset::Ideal, tech, 1 << 10, &w);
    let ideal_large = hmean(ConfigPreset::Ideal, tech, 64 << 10, &w);
    let clgp_spread = clgp_large / clgp_small - 1.0;
    let ideal_spread = ideal_large / ideal_small - 1.0;
    assert!(
        clgp_spread < ideal_spread,
        "CLGP spread {clgp_spread:.3} not flatter than ideal's {ideal_spread:.3}"
    );
    // And small-cache CLGP already reaches most of large-cache CLGP.
    assert!(
        clgp_small > 0.85 * clgp_large,
        "CLGP collapsed at small caches: {clgp_small:.3} vs {clgp_large:.3}"
    );
}

#[test]
fn clgp_fetches_dominantly_from_prestage_buffer() {
    // §5.2: "The percentage of fetches that are served by the 4-entry
    // pre-buffer is always over 86%" (88% avg; 95% one-cycle with L0).
    let w = quick_workloads();
    let cfg = SimConfig::preset(ConfigPreset::Clgp, TechNode::T045, 8 << 10)
        .with_insts(30_000, 100_000);
    let r = run_config_over(cfg, &w, 7);
    for (name, s) in &r.per_bench {
        let share = s.front.fetch_share(s.front.fetch_pb);
        assert!(
            share > 0.6,
            "{name}: prestage share only {:.1}%",
            100.0 * share
        );
    }
}

#[test]
fn fdp_degenerates_to_the_l1_as_it_grows() {
    // §5.2 / Figure 7(a): "With a 32 KB I-cache, more than 94% of the FDP
    // fetches comes from L1" — the filter stops prefetching what the L1
    // already holds, so FDP inherits the multi-cycle hit.
    let w = quick_workloads();
    let share_at = |l1: usize| {
        let cfg = SimConfig::preset(ConfigPreset::Fdp, TechNode::T045, l1)
            .with_insts(30_000, 100_000);
        let r = run_config_over(cfg, &w, 7);
        r.per_bench
            .iter()
            .map(|(_, s)| s.front.fetch_share(s.front.fetch_l1))
            .sum::<f64>()
            / r.per_bench.len() as f64
    };
    let small = share_at(1 << 10);
    let large = share_at(32 << 10);
    assert!(
        large > small,
        "FDP L1 share should grow with L1 size: {small:.2} -> {large:.2}"
    );
    assert!(large > 0.6, "FDP L1 share at 32K only {large:.2}");
}

#[test]
fn pipelining_helps_the_baseline_but_costs_redirect_depth() {
    let w = quick_workloads();
    let tech = TechNode::T045;
    // At large sizes, pipelining the multi-cycle L1 must beat blocking it.
    let plain = hmean(ConfigPreset::Base, tech, 64 << 10, &w);
    let piped = hmean(ConfigPreset::BasePipelined, tech, 64 << 10, &w);
    assert!(piped > plain, "pipelined {piped:.3} <= blocking {plain:.3}");
    // And the ideal one-cycle cache still beats pipelining (the extra
    // stages cost misprediction penalty).
    let ideal = hmean(ConfigPreset::Ideal, tech, 64 << 10, &w);
    assert!(ideal >= piped, "ideal {ideal:.3} < pipelined {piped:.3}");
}

#[test]
fn technology_scaling_hurts_base_more_than_clgp() {
    // §1/§6: the CLGP advantage grows as the node shrinks.
    let w = quick_workloads();
    let l1 = 8 << 10;
    let gain_at = |tech| {
        let base = hmean(ConfigPreset::BaseL0, tech, l1, &w);
        let clgp = hmean(ConfigPreset::ClgpL0, tech, l1, &w);
        clgp / base
    };
    let gain_090 = gain_at(TechNode::T090);
    let gain_045 = gain_at(TechNode::T045);
    assert!(
        gain_045 > gain_090,
        "CLGP advantage should grow with shrink: {gain_090:.3} -> {gain_045:.3}"
    );
}

#[test]
fn deterministic_end_to_end() {
    let w = quick_workloads();
    let cfg = SimConfig::preset(ConfigPreset::ClgpL0Pb16, TechNode::T090, 2 << 10)
        .with_insts(10_000, 50_000);
    let a = run_config_over(cfg, &w, 9);
    let b = run_config_over(cfg, &w, 9);
    for ((n1, s1), (n2, s2)) in a.per_bench.iter().zip(&b.per_bench) {
        assert_eq!(n1, n2);
        assert_eq!(s1.cycles, s2.cycles);
        assert_eq!(s1.committed, s2.committed);
        assert_eq!(s1.redirects, s2.redirects);
        assert_eq!(s1.front, s2.front);
    }
}
