//! Property-based tests over the core data structures' invariants.

use fetch_prestaging::cache::{ReqClass, ReqId, SetAssocCache};
use fetch_prestaging::core::{FetchQueue, PbKind, PbLookup, PreBuffer, QueueKind};
use proptest::prelude::*;

proptest! {
    /// A set-associative cache never exceeds its capacity, and a line just
    /// filled is always present until something maps over it.
    #[test]
    fn cache_occupancy_bounded(ops in prop::collection::vec((0u64..64, any::<bool>()), 1..400)) {
        let mut c = SetAssocCache::new(1 << 10, 64, 2);
        let lines = (1usize << 10) / 64;
        for (line, is_fill) in ops {
            let addr = line * 64;
            if is_fill {
                c.fill(addr);
                prop_assert!(c.contains(addr));
            } else {
                let hit = c.lookup(addr);
                prop_assert_eq!(hit, c.contains(addr));
            }
            prop_assert!(c.occupancy() <= lines);
        }
    }

    /// Fill-then-lookup of `assoc` distinct lines in one set always hits:
    /// true LRU never evicts within a working set that fits.  Associativity
    /// is a power of two — the array rejects geometries whose mask-indexed
    /// set count would alias (see `array.rs`).
    #[test]
    fn lru_retains_working_set(base in 0u64..1000, assoc_pow in 0u32..4) {
        let assoc = 1usize << assoc_pow;
        let line = 64u64;
        let sets = 8u64;
        let cap = (sets * assoc as u64 * line) as usize;
        let mut c = SetAssocCache::new(cap, 64, assoc);
        // `assoc` lines mapping to the same set (stride = sets*line).
        let addrs: Vec<u64> = (0..assoc as u64).map(|i| (base + i * sets) * line).collect();
        for &a in &addrs { c.fill(a); }
        for _ in 0..3 {
            for &a in &addrs {
                prop_assert!(c.lookup(a), "working set evicted");
            }
        }
    }

    /// The prestage buffer never reports more valid entries than capacity,
    /// `consume` never underflows, and a pinned entry survives arbitrary
    /// allocation pressure.
    #[test]
    fn prestage_buffer_invariants(ops in prop::collection::vec((0u64..32, 0u8..3), 1..300)) {
        let mut pb = PreBuffer::new(PbKind::Clgp, 4);
        let pinned = 0xDEAD_0000u64;
        assert!(pb.allocate(pinned, ReqId(999)));
        pb.bump_consumers(pinned); // consumers = 2: survives one consume
        pb.complete(ReqId(999));
        let mut req = 0u64;
        for (line, op) in ops {
            let addr = 0x4000 + line * 64;
            match op {
                0 => {
                    if pb.lookup(addr) == PbLookup::Miss && pb.can_allocate() {
                        req += 1;
                        pb.allocate(addr, ReqId(req));
                    }
                }
                1 => { pb.complete(ReqId(req)); }
                _ => { pb.consume(addr); }
            }
            prop_assert!(pb.occupancy() <= pb.capacity());
            prop_assert!(pb.is_valid(pinned), "pinned line was replaced");
        }
    }

    /// Queue accounting: lines pushed as blocks always pop in order and the
    /// block cap is respected.
    #[test]
    fn fetch_queue_fifo(blocks in prop::collection::vec((0u64..1u64<<20, 1u32..64), 1..20)) {
        let mut q = FetchQueue::new(QueueKind::Cltq, 64, 8);
        let mut accepted = Vec::new();
        for (i, &(start, len)) in blocks.iter().enumerate() {
            let start = start * 4;
            if q.push_block(i as u64, start, len) {
                accepted.push((i as u64, start, len));
            }
            prop_assert!(q.len_blocks() <= 8);
        }
        // Pop everything; per-block instruction counts must be preserved.
        let mut got: std::collections::HashMap<u64, u32> = Default::default();
        let mut last_seq = 0u64;
        while let Some(slot) = q.pop_head_line() {
            prop_assert!(slot.block_seq >= last_seq, "out of order");
            last_seq = slot.block_seq;
            *got.entry(slot.block_seq).or_default() += slot.n_insts;
        }
        for (seq, _, len) in accepted {
            prop_assert_eq!(got.get(&seq).copied().unwrap_or(0), len);
        }
    }
}

/// Non-proptest sanity: request ids from the bus are unique and completions
/// preserve the line address.
#[test]
fn bus_ids_unique_lines_preserved() {
    use fetch_prestaging::cache::{L2Config, L2System};
    use fetch_prestaging::cacti::TechNode;
    let mut l2 = L2System::new(L2Config::for_node(TechNode::T090));
    let mut seen = std::collections::HashSet::new();
    let mut expect = std::collections::HashMap::new();
    for i in 0..50u64 {
        let addr = 0x1000 + i * 128;
        let id = l2.submit(addr, ReqClass::Prefetch, 0);
        assert!(seen.insert(id), "duplicate request id");
        expect.insert(id, addr & !63);
    }
    let mut done = 0;
    for now in 0..10_000 {
        for c in l2.tick(now) {
            assert_eq!(expect[&c.id], c.line);
            done += 1;
        }
        if done == 50 {
            return;
        }
    }
    panic!("only {done}/50 completions");
}
