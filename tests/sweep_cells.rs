//! Properties of the flat cell-addressed sweep runner: the cell ↔ grid
//! position mapping is a bijection, and cell evaluation is bit-exact under
//! any thread count and any cell order — the invariant that makes the grid
//! shardable across threads today and processes later.

use fetch_prestaging::prelude::*;
use fetch_prestaging::sim::{run_cells_with_threads, CellResult};
use prestage_workload::Workload;
use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

fn tiny_workloads(n: usize) -> Vec<Workload> {
    prestage_workload::specint_mini(n, 5)
}

fn fisher_yates<T>(items: &mut [T], seed: u64) {
    let mut rng = SmallRng::seed_from_u64(seed);
    for i in (1..items.len()).rev() {
        let j = rng.gen_range(0..i + 1);
        items.swap(i, j);
    }
}

/// Bit-exact equality of the stats fields determinism covers (never wall
/// time, which is measurement).
fn assert_stats_eq(a: &CellResult, b: &CellResult, what: &str) {
    assert_eq!(a.cell, b.cell, "{what}: compared different cells");
    assert_eq!(a.stats.cycles, b.stats.cycles, "{what}: {:?}", a.cell);
    assert_eq!(a.stats.committed, b.stats.committed, "{what}: {:?}", a.cell);
    assert_eq!(a.stats.redirects, b.stats.redirects, "{what}: {:?}", a.cell);
    assert_eq!(a.stats.front, b.stats.front, "{what}: {:?}", a.cell);
}

proptest! {
    /// cell-id ↔ grid-position round-trips for arbitrary grid shapes.
    #[test]
    fn cell_position_bijection(
        preset_picks in prop::collection::vec(0usize..10, 1..6),
        size_picks in prop::collection::vec(1usize..257, 1..6),
        n_bench in 1usize..13,
        exec_seed in 0u64..1000,
        tech_pick in 0usize..2,
    ) {
        let mut presets: Vec<ConfigPreset> =
            preset_picks.iter().map(|&i| ConfigPreset::all()[i]).collect();
        let mut seen = Vec::new();
        presets.retain(|p| { let new = !seen.contains(p); seen.push(*p); new });
        let mut sizes: Vec<usize> = size_picks.iter().map(|&s| s * 256).collect();
        let mut seen = Vec::new();
        sizes.retain(|s| { let new = !seen.contains(s); seen.push(*s); new });
        let tech = [TechNode::T090, TechNode::T045][tech_pick];

        let grid = CellGrid::new(presets.clone(), tech, sizes.clone(), n_bench, exec_seed);
        prop_assert_eq!(grid.n_cells(), presets.len() * sizes.len() * n_bench);
        let cells = grid.cells();
        prop_assert_eq!(cells.len(), grid.n_cells());
        for (flat, cell) in cells.iter().enumerate() {
            prop_assert_eq!(grid.cell_at(flat), *cell);
            prop_assert_eq!(grid.index_of(cell), Some(flat));
            // A cell from a different sweep never aliases into this grid.
            let mut foreign = *cell;
            foreign.exec_seed = exec_seed + 1;
            prop_assert_eq!(grid.index_of(&foreign), None);
            let mut foreign = *cell;
            foreign.bench_idx = n_bench;
            prop_assert_eq!(grid.index_of(&foreign), None);
        }
    }
}

#[test]
fn run_cells_is_invariant_under_thread_count_and_shuffle() {
    let workloads = tiny_workloads(2);
    let grid = CellGrid::new(
        vec![ConfigPreset::BaseL0, ConfigPreset::ClgpL0],
        TechNode::T045,
        vec![1 << 10, 4 << 10],
        workloads.len(),
        7,
    );
    let cells = grid.cells();
    let configure = |c: &SweepCell| c.config().with_insts(1_000, 5_000);

    // Serial reference: one thread, flat order.
    let reference = run_cells_with_threads(&cells, &workloads, configure, 1);

    // Every thread count gives bit-exact results in the same order.
    let avail = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(4);
    for threads in [1, 2, avail, avail + 3] {
        let got = run_cells_with_threads(&cells, &workloads, configure, threads);
        assert_eq!(got.len(), reference.len());
        for (a, b) in got.iter().zip(&reference) {
            assert_stats_eq(a, b, &format!("threads={threads}"));
        }
    }

    // Any shuffle of the work list merges back to the same ordered grid.
    let reference_grid = grid.merge(reference, &workloads);
    for shuffle_seed in [1u64, 2, 3] {
        let mut shuffled = cells.clone();
        fisher_yates(&mut shuffled, shuffle_seed);
        let results = run_cells_with_threads(&shuffled, &workloads, configure, 2);
        let merged = grid.merge(results, &workloads);
        for (row_a, row_b) in merged.iter().zip(&reference_grid) {
            for (a, b) in row_a.iter().zip(row_b) {
                for ((n1, s1), (n2, s2)) in a.per_bench.iter().zip(&b.per_bench) {
                    assert_eq!(n1, n2, "shuffle seed {shuffle_seed}");
                    assert_eq!(s1.cycles, s2.cycles, "shuffle seed {shuffle_seed}: {n1}");
                    assert_eq!(s1.committed, s2.committed, "shuffle seed {shuffle_seed}: {n1}");
                }
            }
        }
    }

    // Sharding: splitting the work list and merging the shard unions is the
    // same grid (the ROADMAP's multi-process scheme in miniature).
    let (left, right) = cells.split_at(cells.len() / 2);
    let mut shards = run_cells_with_threads(left, &workloads, configure, 2);
    shards.extend(run_cells_with_threads(right, &workloads, configure, 2));
    let merged = grid.merge(shards, &workloads);
    for (row_a, row_b) in merged.iter().zip(&reference_grid) {
        for (a, b) in row_a.iter().zip(row_b) {
            for ((_, s1), (_, s2)) in a.per_bench.iter().zip(&b.per_bench) {
                assert_eq!(s1.cycles, s2.cycles, "sharded merge diverged");
            }
        }
    }
}

#[test]
fn mechanism_axis_is_bit_exact_under_threads_and_sharding() {
    // Per-mechanism determinism: for every `PrefetcherKind` (the spec's
    // `prefetcher` axis — including MANA and the program map), cell
    // evaluation is bit-exact under any thread count, and a sharded run
    // merges to exactly the whole-grid result.
    let workloads = tiny_workloads(2);
    let grid = CellGrid::new(
        vec![ConfigPreset::Base, ConfigPreset::FdpL0],
        TechNode::T045,
        vec![1 << 10, 4 << 10],
        workloads.len(),
        7,
    );
    let cells = grid.cells();
    for kind in PrefetcherKind::all() {
        let configure =
            |c: &SweepCell| c.config().with_insts(1_000, 5_000).with_prefetcher(kind);
        let reference = run_cells_with_threads(&cells, &workloads, configure, 1);
        for threads in [2, 5] {
            let got = run_cells_with_threads(&cells, &workloads, configure, threads);
            for (a, b) in got.iter().zip(&reference) {
                assert_stats_eq(a, b, &format!("{kind:?} threads={threads}"));
            }
        }
        // Shard split + merge equals the single-pass grid.
        let (left, right) = cells.split_at(3);
        let mut shards = run_cells_with_threads(left, &workloads, configure, 2);
        shards.extend(run_cells_with_threads(right, &workloads, configure, 2));
        let merged = grid.merge(shards, &workloads);
        let whole = grid.merge(reference, &workloads);
        for (row_a, row_b) in merged.iter().zip(&whole) {
            for (a, b) in row_a.iter().zip(row_b) {
                for ((n1, s1), (n2, s2)) in a.per_bench.iter().zip(&b.per_bench) {
                    assert_eq!(n1, n2, "{kind:?}");
                    assert_eq!(s1, s2, "{kind:?}: sharded merge diverged for {n1}");
                }
            }
        }
        // The prefetching mechanisms must actually prefetch on this grid
        // (a silently-inert mechanism would pass every determinism check).
        if kind != PrefetcherKind::None {
            let issued: u64 = whole
                .iter()
                .flatten()
                .flat_map(|r| r.per_bench.iter())
                .map(|(_, s)| s.front.prefetches_issued)
                .sum();
            assert!(issued > 0, "{kind:?} never issued a prefetch");
        }
    }
}

#[test]
fn whole_flattened_grid_matches_serial_engine_runs() {
    // The determinism the figures depend on, for a full multi-row grid —
    // not just one config row: every cell of the parallel flattened sweep
    // equals a fresh serial Engine run of that cell.
    let workloads = tiny_workloads(3);
    let grid = CellGrid::new(
        vec![ConfigPreset::Base, ConfigPreset::Fdp, ConfigPreset::ClgpL0],
        TechNode::T045,
        vec![512, 2 << 10],
        workloads.len(),
        9,
    );
    let configure = |c: &SweepCell| c.config().with_insts(1_000, 5_000);
    let results = run_cells_with_threads(&grid.cells(), &workloads, configure, 4);
    for r in &results {
        let serial = Engine::new(configure(&r.cell), &workloads[r.cell.bench_idx], r.cell.exec_seed)
            .run();
        assert_eq!(r.stats.cycles, serial.cycles, "{:?}", r.cell);
        assert_eq!(r.stats.committed, serial.committed, "{:?}", r.cell);
        assert_eq!(r.stats.redirects, serial.redirects, "{:?}", r.cell);
        assert_eq!(r.stats.front, serial.front, "{:?}", r.cell);
    }
}

#[test]
fn whole_grid_wall_clock_smoke() {
    // Smoke check that the flat pool actually runs the grid concurrently:
    // the parallel sweep must never be pathologically slower than serial
    // (which would indicate the pool serialising on a lock). Not a
    // benchmark — the generous bound only catches catastrophe.
    let workloads = tiny_workloads(2);
    let grid = CellGrid::new(
        vec![ConfigPreset::BasePipelined, ConfigPreset::ClgpL0],
        TechNode::T045,
        vec![1 << 10, 4 << 10, 16 << 10],
        workloads.len(),
        3,
    );
    let configure = |c: &SweepCell| c.config().with_insts(2_000, 20_000);
    let cells = grid.cells();

    let t0 = std::time::Instant::now();
    let serial = run_cells_with_threads(&cells, &workloads, configure, 1);
    let serial_wall = t0.elapsed();

    let avail = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(2);
    let t0 = std::time::Instant::now();
    let par = run_cells_with_threads(&cells, &workloads, configure, avail);
    let par_wall = t0.elapsed();

    eprintln!(
        "whole-grid smoke: {} cells, serial {:.3}s, {} threads {:.3}s ({:.2}x)",
        cells.len(),
        serial_wall.as_secs_f64(),
        avail,
        par_wall.as_secs_f64(),
        serial_wall.as_secs_f64() / par_wall.as_secs_f64().max(1e-9),
    );
    // Absolute ceiling rather than a serial-relative ratio: a ratio flakes
    // on loaded CI runners, while this generous bound still catches the
    // catastrophe class (a pool serialising on a lock or livelocking).
    assert!(
        par_wall.as_secs_f64() < 60.0,
        "parallel mini-grid took {par_wall:?} — pool pathologically slow"
    );
    // And concurrency never costs correctness.
    for (a, b) in par.iter().zip(&serial) {
        assert_eq!(a.stats.cycles, b.stats.cycles, "{:?}", a.cell);
    }
    // Per-cell wall times are recorded for load-balance diagnostics.
    assert!(par.iter().all(|r| r.wall.as_nanos() > 0));
}
