//! Trace conformance suite: the properties the trace subsystem ships on.
//!
//! * **Replay fidelity** — for randomized profiles and seeds, a recorded
//!   trace replays into the *identical* stream sequence and the identical
//!   full `GridResult`s (every counter of every cell) as live generation.
//! * **Version compatibility** — v1 traces stay readable through both the
//!   whole-slice API and the streaming reader.
//! * **Corruption coverage** — every header byte mutated, every chunk
//!   field mutated, mid-chunk truncation, trailing garbage: all must fail,
//!   and the error must name the offending field, not just "bad data".
//! * **Golden fixture** — `specs/trace_smoke.pstr` re-records
//!   byte-identically from its own declared identity, so any drift in the
//!   format *or* the trace generator is caught at review time.

use prestage_sim::{
    grid_output, try_run_spec, try_run_spec_over, ConfigPreset, ExperimentSpec, PrefetcherKind,
    TraceSource,
};
use prestage_sim::{run_cells_sourced, CellGrid};
use prestage_workload::{
    build, by_name, read_trace, record_trace, replay_file_trusted, specint2000, write_trace,
    InstSource, TraceGenerator, TraceReader, TraceReplayer,
};
use proptest::prelude::*;
use std::io::{BufWriter, Cursor};
use std::path::{Path, PathBuf};

struct TempDir(PathBuf);

impl TempDir {
    fn new(tag: &str) -> TempDir {
        let dir = std::env::temp_dir().join(format!("prestage_tr_{tag}_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        TempDir(dir)
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

/// A workload small enough to record/replay thousands of times, but with
/// real structure (calls, loops, memory models).
fn mini_workload(profile_idx: usize, wseed: u64) -> prestage_workload::Workload {
    let mut profiles = specint2000();
    let mut p = profiles.remove(profile_idx % profiles.len());
    p.i_footprint_kb = p.i_footprint_kb.min(4);
    p.n_funcs = p.n_funcs.min(8);
    build(&p, wseed)
}

fn record_to_vec(
    w: &prestage_workload::Workload,
    exec_seed: u64,
    n: u64,
    chunk: u32,
) -> Vec<u8> {
    let mut out = Cursor::new(Vec::new());
    record_trace(&mut out, w, exec_seed, n, chunk).unwrap();
    out.into_inner()
}

// ---------------------------------------------------------------------------
// Replay fidelity.
// ---------------------------------------------------------------------------

proptest! {
    /// Stream-level fidelity over randomized (profile, workload seed, exec
    /// seed, chunk size): every descriptor and every instruction of every
    /// stream identical between live generation and disk replay.
    #[test]
    fn replayed_streams_are_bit_identical_to_live(seed in 0u64..10_000) {
        let profile_idx = (seed % 12) as usize;
        let wseed = seed.wrapping_mul(0x9E37_79B9).wrapping_add(1);
        let xseed = seed.wrapping_mul(0x85EB_CA6B).wrapping_add(7);
        let chunk = [1u32, 33, 512, 4096][(seed % 4) as usize];
        let w = mini_workload(profile_idx, wseed);
        let bytes = record_to_vec(&w, xseed, 6_000, chunk);

        let mut live = TraceGenerator::new(&w, xseed);
        let mut replay =
            TraceReplayer::new(TraceReader::new(&bytes[..]).unwrap(), "conformance");
        let (mut lb, mut rb) = (Vec::new(), Vec::new());
        let mut seen = 0u64;
        while seen < 5_000 {
            let ls = InstSource::next_stream(&mut live, &mut lb);
            let rs = replay.next_stream(&mut rb);
            prop_assert_eq!(ls, rs);
            prop_assert_eq!(&lb, &rb);
            seen += ls.len as u64;
        }
    }
}

proptest! {
    /// End-to-end fidelity over randomized seeds: a replay-mode spec
    /// produces full `GridResult`s (every stat counter of every cell) and
    /// rendered grid artifacts identical to the live-generation run.
    #[test]
    fn replayed_grids_are_bit_identical_to_live(seed in 0u64..1_000) {
        let names = ["gzip", "mcf", "twolf", "vortex"];
        let bench = names[(seed % 4) as usize];
        let dir = TempDir::new(&format!("grid_{seed}"));
        let live = ExperimentSpec {
            presets: vec![ConfigPreset::Base, ConfigPreset::ClgpL0],
            l1_sizes: vec![2 << 10],
            bench: Some(vec![bench.to_string()]),
            warmup_insts: 1_000,
            measure_insts: 3_000,
            workload_seed: seed.wrapping_mul(31).wrapping_add(5),
            exec_seed: seed.wrapping_mul(17).wrapping_add(3),
            threads: Some(2),
            ..ExperimentSpec::default()
        };
        let replay = ExperimentSpec {
            trace: Some(TraceSource { dir: dir.0.to_string_lossy().into_owned() }),
            ..live.clone()
        };
        for (w, path) in live
            .build_workloads()
            .unwrap()
            .iter()
            .zip(replay.trace_paths().unwrap().unwrap())
        {
            let f = std::fs::File::create(&path).unwrap();
            record_trace(
                BufWriter::new(f),
                w,
                live.exec_seed,
                live.trace_record_insts(),
                2048,
            )
            .unwrap();
        }
        let live_rows = try_run_spec(&live).unwrap();
        let replay_rows = try_run_spec(&replay).unwrap();
        for (lr, rr) in live_rows.iter().flatten().zip(replay_rows.iter().flatten()) {
            prop_assert_eq!(&lr.per_bench, &rr.per_bench);
        }
        prop_assert_eq!(
            grid_output(&live, &live_rows),
            grid_output(&replay, &replay_rows)
        );
    }
}

/// The mechanism axis of replay parity: for every `PrefetcherKind` —
/// including the MANA and program-map mechanisms — a live run, a spec
/// replay (the shared in-memory decode path), and an explicit streamed
/// file replay (the over-budget fallback path) produce bit-identical
/// `GridResult`s, every counter of every cell.  One recording serves all
/// mechanisms: the committed path is mechanism-independent.
#[test]
fn every_mechanism_replays_bit_identically_to_live() {
    let dir = TempDir::new("mech");
    let base = ExperimentSpec {
        presets: vec![ConfigPreset::Base, ConfigPreset::ClgpL0],
        l1_sizes: vec![2 << 10],
        bench: Some(vec!["twolf".to_string()]),
        warmup_insts: 1_000,
        measure_insts: 3_000,
        workload_seed: 11,
        exec_seed: 13,
        threads: Some(2),
        ..ExperimentSpec::default()
    };
    let workloads = base.build_workloads().unwrap();
    let replaying = ExperimentSpec {
        trace: Some(TraceSource {
            dir: dir.0.to_string_lossy().into_owned(),
        }),
        ..base.clone()
    };
    let path = replaying.trace_paths().unwrap().unwrap().remove(0);
    let f = std::fs::File::create(&path).unwrap();
    record_trace(
        BufWriter::new(f),
        &workloads[0],
        base.exec_seed,
        base.trace_record_insts(),
        2048,
    )
    .unwrap();

    for kind in PrefetcherKind::all() {
        let live = ExperimentSpec {
            prefetcher: Some(kind),
            ..base.clone()
        };
        let shared = ExperimentSpec {
            prefetcher: Some(kind),
            ..replaying.clone()
        };
        let live_rows = try_run_spec_over(&live, &workloads).unwrap();
        // Spec replay: the traces are small, so this exercises the shared
        // in-memory `SharedReplayer` path.
        let shared_rows = try_run_spec_over(&shared, &workloads).unwrap();
        for (lr, rr) in live_rows.iter().flatten().zip(shared_rows.iter().flatten()) {
            assert_eq!(lr.per_bench, rr.per_bench, "{kind:?}: shared replay diverged");
        }
        assert_eq!(
            grid_output(&live, &live_rows),
            grid_output(&shared, &shared_rows),
            "{kind:?}: replayed artifact bytes diverged"
        );
        // Streamed replay, forced explicitly (the path a trace over the
        // in-memory budget takes): one trusted file stream per cell.
        let grid = CellGrid::from_spec(&shared).unwrap();
        let results = run_cells_sourced(
            &grid.cells(),
            &workloads,
            |c| shared.sim_config(c.preset, c.l1),
            2,
            shared.predictor,
            |_c, _w| Box::new(replay_file_trusted(&path).unwrap()),
        );
        let streamed_rows = grid.merge(results, &workloads);
        for (lr, rr) in live_rows.iter().flatten().zip(streamed_rows.iter().flatten()) {
            assert_eq!(lr.per_bench, rr.per_bench, "{kind:?}: streamed replay diverged");
        }
    }
}

// ---------------------------------------------------------------------------
// v1 → v2 compatibility.
// ---------------------------------------------------------------------------

#[test]
fn v1_traces_stay_readable_through_both_apis() {
    let w = mini_workload(0, 11);
    let insts = TraceGenerator::new(&w, 5).take_insts(3_000);
    let mut v1 = Vec::new();
    write_trace(&mut v1, &insts).unwrap();

    // Whole-slice API.
    assert_eq!(read_trace(&v1[..]).unwrap(), insts);

    // Streaming API: header declares v1, no identity, and the records
    // stream out identically.
    let reader = TraceReader::new(&v1[..]).unwrap();
    let h = reader.header().clone();
    assert_eq!(h.version, 1);
    assert_eq!(h.count, insts.len() as u64);
    assert_eq!(h.meta, None);
    let streamed: Vec<_> = reader.map(|r| r.unwrap()).collect();
    assert_eq!(streamed, insts);

    // And a v1 trace replays into the same streams as a v2 recording of
    // the same execution.
    let v2 = record_to_vec(&w, 5, insts.len() as u64, 512);
    let mut r1 = TraceReplayer::new(TraceReader::new(&v1[..]).unwrap(), "v1");
    let mut r2 = TraceReplayer::new(TraceReader::new(&v2[..]).unwrap(), "v2");
    let (mut b1, mut b2) = (Vec::new(), Vec::new());
    let mut seen = 0;
    while seen < 2_500 {
        let s1 = r1.next_stream(&mut b1);
        let s2 = r2.next_stream(&mut b2);
        assert_eq!(s1, s2);
        assert_eq!(b1, b2);
        seen += s1.len;
    }
}

// ---------------------------------------------------------------------------
// Corruption coverage.
// ---------------------------------------------------------------------------

/// Tokens an acceptable error message may carry: each names a concrete
/// field or failure site.  "bad data"-grade messages fail the suite.
const FIELD_TOKENS: [&str; 12] = [
    "magic",
    "version",
    "profile",
    "workload_seed",
    "exec_seed",
    "instruction count",
    "chunk size",
    "header CRC",
    "CRC mismatch",
    "truncated",
    "record count",
    "payload",
];

fn assert_names_a_field(err: &std::io::Error, what: &str) {
    let msg = err.to_string();
    assert!(
        FIELD_TOKENS.iter().any(|t| msg.contains(t)),
        "{what}: error does not name a field: {msg:?}"
    );
}

fn fixture_bytes() -> (Vec<u8>, usize) {
    let w = mini_workload(1, 3);
    let bytes = record_to_vec(&w, 9, 700, 256);
    // v2 header length: magic(4) + version(4) + profile_len(2) + profile +
    // seeds(16) + count(8) + chunk(4) + crc(4).
    let hlen = 42 + w.profile.name.len();
    (bytes, hlen)
}

/// Every single header byte, mutated: the reader must refuse the file with
/// a field-naming error.  (Identity fields are covered by the header CRC;
/// structural fields also carry their own named checks.)
#[test]
fn every_mutated_header_byte_is_rejected_by_name() {
    let (bytes, hlen) = fixture_bytes();
    for i in 0..hlen {
        let mut bad = bytes.clone();
        bad[i] ^= 0x40;
        let e = read_trace(&bad[..])
            .expect_err(&format!("header byte {i} mutated yet the trace read"));
        assert_names_a_field(&e, &format!("header byte {i}"));
    }
    // Targeted: the structural prefixes produce their *specific* errors.
    let mut bad = bytes.clone();
    bad[0] = b'Q';
    assert!(read_trace(&bad[..]).unwrap_err().to_string().contains("magic"));
    let mut bad = bytes.clone();
    bad[4] = 77;
    assert!(read_trace(&bad[..])
        .unwrap_err()
        .to_string()
        .contains("unsupported trace version 77"));
    // Identity bytes (profile, seeds) land in the CRC net — there is no
    // ground truth to compare them against, so the CRC is the check.
    let mut bad = bytes.clone();
    bad[hlen - 20] ^= 0x01; // inside the count/seed region
    assert!(read_trace(&bad[..])
        .unwrap_err()
        .to_string()
        .contains("header CRC"));
    let mut bad = bytes;
    bad[hlen - 5] ^= 0x10; // inside chunk_insts or count region
    let msg = read_trace(&bad[..]).unwrap_err().to_string();
    assert!(
        msg.contains("header CRC") || msg.contains("chunk size"),
        "{msg}"
    );
}

/// Chunk-level corruption: record counts, payload lengths, payload bytes,
/// CRCs, truncation at every region, trailing bytes.
#[test]
fn chunk_corruption_is_rejected_by_name() {
    let (bytes, hlen) = fixture_bytes();
    // Layout of chunk 0: n_records(4) payload_len(4) payload crc(4).
    let n0 = hlen;
    let plen0 = hlen + 4;
    let payload0 = hlen + 8;
    let c0_plen = u32::from_le_bytes(bytes[plen0..plen0 + 4].try_into().unwrap()) as usize;
    let crc0 = payload0 + c0_plen;

    // Record count above the header's chunk size.
    let mut bad = bytes.clone();
    bad[n0..n0 + 4].copy_from_slice(&4096u32.to_le_bytes());
    let msg = read_trace(&bad[..]).unwrap_err().to_string();
    assert!(msg.contains("chunk 0 claims 4096 records"), "{msg}");

    // Record count lowered: the payload no longer divides into it.
    let mut bad = bytes.clone();
    bad[n0..n0 + 4].copy_from_slice(&255u32.to_le_bytes());
    let msg = read_trace(&bad[..]).unwrap_err().to_string();
    assert!(
        msg.contains("chunk 0") && msg.contains("trailing bytes"),
        "{msg}"
    );

    // Record count above what remains of the header's total: walk to the
    // final chunk (700 records at 256/chunk leaves 188) and inflate it.
    let mut off = hlen;
    loop {
        let n = u32::from_le_bytes(bytes[off..off + 4].try_into().unwrap());
        let plen = u32::from_le_bytes(bytes[off + 4..off + 8].try_into().unwrap()) as usize;
        if n < 256 {
            // The final, partial chunk.
            let mut bad = bytes.clone();
            bad[off..off + 4].copy_from_slice(&250u32.to_le_bytes());
            let msg = read_trace(&bad[..]).unwrap_err().to_string();
            assert!(
                msg.contains("claims 250 records but only 188 remain"),
                "{msg}"
            );
            break;
        }
        off += 8 + plen + 4;
    }

    // Zero-record chunk.
    let mut bad = bytes.clone();
    bad[n0..n0 + 4].copy_from_slice(&0u32.to_le_bytes());
    let msg = read_trace(&bad[..]).unwrap_err().to_string();
    assert!(msg.contains("chunk 0 claims 0 records"), "{msg}");

    // Impossible payload length for the claimed record count.
    let mut bad = bytes.clone();
    bad[plen0..plen0 + 4].copy_from_slice(&7u32.to_le_bytes());
    let msg = read_trace(&bad[..]).unwrap_err().to_string();
    assert!(msg.contains("chunk 0 payload length 7"), "{msg}");

    // A flipped payload byte: CRC mismatch naming the chunk.
    let mut bad = bytes.clone();
    bad[payload0 + 5] ^= 0x80;
    let msg = read_trace(&bad[..]).unwrap_err().to_string();
    assert!(msg.contains("chunk 0 CRC mismatch"), "{msg}");

    // A flipped CRC byte: same refusal.
    let mut bad = bytes.clone();
    bad[crc0] ^= 0x01;
    let msg = read_trace(&bad[..]).unwrap_err().to_string();
    assert!(msg.contains("chunk 0 CRC mismatch"), "{msg}");

    // Truncation in every chunk region: the frame fields, mid-payload,
    // inside the CRC.
    for cut in [n0 + 2, plen0 + 1, payload0 + c0_plen / 2, crc0 + 2] {
        let bad = &bytes[..cut];
        let e = read_trace(bad).unwrap_err();
        assert!(
            e.to_string().contains("truncated"),
            "cut at {cut}: {e}"
        );
        assert_names_a_field(&e, &format!("cut at {cut}"));
    }

    // Trailing garbage after the final chunk.
    let mut bad = bytes.clone();
    bad.push(0);
    let msg = read_trace(&bad[..]).unwrap_err().to_string();
    assert!(msg.contains("trailing data"), "{msg}");
}

/// The unvalidated-`count` regression (ISSUE 4 satellite): a hostile
/// header claiming up to 2^60 records over a body of a few bytes must fail
/// on the missing data immediately, not size a `Vec` from the header.
#[test]
fn hostile_header_counts_cannot_drive_preallocation() {
    // v1: count is the only length field.
    for count in [u64::MAX / 2, 1 << 40, 16_777_216] {
        let mut v1 = Vec::new();
        v1.extend_from_slice(b"PSTR");
        v1.extend_from_slice(&1u32.to_le_bytes());
        v1.extend_from_slice(&count.to_le_bytes());
        let e = read_trace(&v1[..]).unwrap_err();
        assert!(e.to_string().contains("truncated"), "{e}");
    }
    // v2: a genuine small trace whose count field is inflated is caught by
    // the header CRC before any chunk is read.
    let (bytes, hlen) = fixture_bytes();
    let count_off = hlen - 16; // count(8) then chunk_insts(4) then crc(4)
    let mut bad = bytes;
    bad[count_off..count_off + 8].copy_from_slice(&(1u64 << 60).to_le_bytes());
    let msg = read_trace(&bad[..]).unwrap_err().to_string();
    assert!(msg.contains("header CRC mismatch"), "{msg}");
}

/// Oversized *length fields* presented with internally-consistent framing
/// (CRCs recomputed where the check order would otherwise mask them):
/// each must be refused by its own named bound, never acted on.
#[test]
fn oversized_length_fields_are_rejected_by_name() {
    use prestage_workload::trace_io::crc32;
    let (bytes, hlen) = fixture_bytes();

    // A v2 header whose chunk size exceeds the format cap, CRC *valid* —
    // the bound itself must refuse it, not the checksum.
    let rebuild_header = |chunk_insts: u32| -> Vec<u8> {
        let mut h = bytes[..hlen - 8].to_vec(); // up to count inclusive
        h.extend_from_slice(&chunk_insts.to_le_bytes());
        let crc = crc32(&h);
        h.extend_from_slice(&crc.to_le_bytes());
        h.extend_from_slice(&bytes[hlen..]);
        h
    };
    for huge in [(1u32 << 20) + 1, u32::MAX] {
        let msg = read_trace(&rebuild_header(huge)[..]).unwrap_err().to_string();
        assert!(
            msg.contains(&format!("chunk size {huge} outside")),
            "chunk_insts {huge}: {msg}"
        );
    }

    // A profile length beyond the 256-byte cap: refused before any
    // attempt to read (or allocate) that many name bytes.
    let mut hand = Vec::new();
    hand.extend_from_slice(b"PSTR");
    hand.extend_from_slice(&2u32.to_le_bytes());
    hand.extend_from_slice(&300u16.to_le_bytes());
    hand.extend_from_slice(&[b'x'; 64]);
    let msg = read_trace(&hand[..]).unwrap_err().to_string();
    assert!(msg.contains("profile length 300 exceeds"), "{msg}");

    // A chunk payload length of u32::MAX over a real header: the
    // per-record bounds (24-32 bytes each) refuse it before any buffer is
    // sized from it.
    let plen_off = hlen + 4;
    let mut bad = bytes.clone();
    bad[plen_off..plen_off + 4].copy_from_slice(&u32::MAX.to_le_bytes());
    let msg = read_trace(&bad[..]).unwrap_err().to_string();
    assert!(
        msg.contains(&format!("chunk 0 payload length {}", u32::MAX)),
        "{msg}"
    );

    // A v1 record count just above the actual body: the reader streams
    // and dies on the missing bytes, never preallocating from the claim.
    let w = mini_workload(2, 5);
    let insts = TraceGenerator::new(&w, 5).take_insts(64);
    let mut v1 = Vec::new();
    write_trace(&mut v1, &insts).unwrap();
    let count_off = 8;
    v1[count_off..count_off + 8].copy_from_slice(&(insts.len() as u64 + 1).to_le_bytes());
    let e = read_trace(&v1[..]).unwrap_err();
    assert!(e.to_string().contains("truncated"), "{e}");
}

// ---------------------------------------------------------------------------
// Golden fixture.
// ---------------------------------------------------------------------------

fn fixture_path() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("specs/trace_smoke.pstr")
}

/// `specs/trace_smoke.pstr` must re-record byte-identically from nothing
/// but its own declared identity (profile name, seeds, count, chunk size).
/// Any drift in the v2 layout, the record codec, the CRC, the profile
/// tables or the trace generator trips this at review time.
/// Regenerate deliberately with
/// `PRESTAGE_REGEN_TRACE_FIXTURE=1 cargo test golden_trace_fixture`.
#[test]
fn golden_trace_fixture_re_records_byte_identically() {
    let path = fixture_path();
    if std::env::var_os("PRESTAGE_REGEN_TRACE_FIXTURE").is_some() {
        let p = by_name("mcf").unwrap();
        let w = build(&p, 42);
        let f = std::fs::File::create(&path).unwrap();
        record_trace(BufWriter::new(f), &w, 42, 2048, 512).unwrap();
    }
    let bytes = std::fs::read(&path)
        .unwrap_or_else(|e| panic!("committed fixture {}: {e}", path.display()));
    let reader = TraceReader::new(&bytes[..]).unwrap();
    let h = reader.header().clone();
    let meta = h.meta.clone().expect("fixture is v2");

    // Rebuild the world from the header alone and re-record.
    let p = by_name(&meta.profile)
        .unwrap_or_else(|| panic!("fixture names unknown profile {:?}", meta.profile));
    let w = build(&p, meta.workload_seed);
    let rerecorded = {
        let mut out = Cursor::new(Vec::new());
        record_trace(&mut out, &w, meta.exec_seed, h.count, h.chunk_insts).unwrap();
        out.into_inner()
    };
    assert_eq!(
        rerecorded,
        bytes,
        "trace_smoke.pstr no longer re-records byte-identically: the v2 format, \
         record codec, or trace generator drifted (if intentional, regenerate \
         with PRESTAGE_REGEN_TRACE_FIXTURE=1 and call out the format change)"
    );

    // The fixture also decodes whole and replays into valid streams.
    let insts = read_trace(&bytes[..]).unwrap();
    assert_eq!(insts.len() as u64, h.count);
    let mut replay = TraceReplayer::new(TraceReader::new(&bytes[..]).unwrap(), "fixture");
    let mut buf = Vec::new();
    let mut seen = 0;
    while seen + 64 < h.count {
        let s = replay.next_stream(&mut buf);
        assert_eq!(s.len as usize, buf.len());
        assert_eq!(s.start, buf[0].pc);
        seen += s.len as u64;
    }
}
