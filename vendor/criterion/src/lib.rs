//! Offline stand-in for `criterion`, covering the slice this workspace's
//! benches use: `Criterion::bench_function` / `benchmark_group`,
//! `Bencher::iter` / `iter_batched`, `Throughput`, `BatchSize`, `black_box`,
//! and the `criterion_group!` / `criterion_main!` macros.
//!
//! It really measures: each benchmark is warmed up, then timed over
//! `sample_size` samples, and the per-iteration median is printed as
//!
//! ```text
//! bench group/name ... median 123.4 ns/iter (throughput 8.1 Melem/s)
//! ```
//!
//! There are no HTML reports, statistical regressions, or outlier analysis —
//! this exists so `cargo bench` runs offline and produces comparable
//! numbers; swap the workspace manifest to real criterion for publication
//! runs.

pub use std::hint::black_box;
use std::time::Instant;

/// How batched inputs are grouped. Only the variants the workspace names.
#[derive(Clone, Copy, Debug)]
pub enum BatchSize {
    SmallInput,
    LargeInput,
    PerIteration,
}

/// Units for reported throughput.
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    Elements(u64),
    Bytes(u64),
}

/// Runs the measured closures and records timing samples.
pub struct Bencher {
    samples: Vec<f64>, // ns per iteration, one entry per sample
    sample_size: usize,
}

impl Bencher {
    fn new(sample_size: usize) -> Self {
        Bencher {
            samples: Vec::new(),
            sample_size,
        }
    }

    /// Time `routine` repeatedly; one sample = a timed burst of calls.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up and burst-length calibration: grow until a burst takes
        // at least ~1ms or a cap is reached.
        let mut per_burst = 1u64;
        loop {
            let t = Instant::now();
            for _ in 0..per_burst {
                black_box(routine());
            }
            let ns = t.elapsed().as_nanos() as u64;
            if ns > 1_000_000 || per_burst >= 1 << 20 {
                break;
            }
            per_burst *= 2;
        }
        for _ in 0..self.sample_size {
            let t = Instant::now();
            for _ in 0..per_burst {
                black_box(routine());
            }
            self.samples
                .push(t.elapsed().as_nanos() as f64 / per_burst as f64);
        }
    }

    /// Time `routine` over fresh inputs from `setup`; setup time excluded.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        // One warm-up call, then one timed call per sample.
        black_box(routine(setup()));
        for _ in 0..self.sample_size {
            let input = setup();
            let t = Instant::now();
            black_box(routine(input));
            self.samples.push(t.elapsed().as_nanos() as f64);
        }
    }

    fn median_ns(&mut self) -> f64 {
        if self.samples.is_empty() {
            return f64::NAN;
        }
        self.samples
            .sort_by(|a, b| a.partial_cmp(b).expect("non-NaN timing"));
        self.samples[self.samples.len() / 2]
    }
}

fn report(name: &str, median_ns: f64, throughput: Option<Throughput>) {
    // Machine-readable hook for CI perf tracking: when
    // `CRITERION_MEDIANS_FILE` names a file, append one
    // `name<TAB>median_ns` line per benchmark (later lines win on
    // re-run).  `prestage-bench`'s ci_grid folds the file into its
    // results/ci_grid.json artifact.
    if let Some(path) = std::env::var_os("CRITERION_MEDIANS_FILE") {
        use std::io::Write;
        if let Some(dir) = std::path::Path::new(&path).parent() {
            let _ = std::fs::create_dir_all(dir);
        }
        match std::fs::OpenOptions::new().create(true).append(true).open(&path) {
            Ok(mut f) => {
                let _ = writeln!(f, "{name}\t{median_ns}");
            }
            Err(e) => eprintln!("warning: cannot append to CRITERION_MEDIANS_FILE: {e}"),
        }
    }
    let human = if median_ns < 1_000.0 {
        format!("{median_ns:.1} ns/iter")
    } else if median_ns < 1_000_000.0 {
        format!("{:.2} us/iter", median_ns / 1_000.0)
    } else {
        format!("{:.2} ms/iter", median_ns / 1_000_000.0)
    };
    let tp = match throughput {
        Some(Throughput::Elements(n)) => {
            format!(" ({:.2} Melem/s)", n as f64 * 1_000.0 / median_ns)
        }
        Some(Throughput::Bytes(n)) => {
            format!(" ({:.2} MB/s)", n as f64 * 1_000.0 / median_ns)
        }
        None => String::new(),
    };
    println!("bench {name:<44} median {human}{tp}");
}

/// A named family of related benchmarks sharing throughput/sample settings.
pub struct BenchmarkGroup<'c> {
    name: String,
    throughput: Option<Throughput>,
    sample_size: usize,
    _parent: &'c mut Criterion,
}

impl BenchmarkGroup<'_> {
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    pub fn bench_function<F>(&mut self, id: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher::new(self.sample_size);
        f(&mut b);
        report(
            &format!("{}/{}", self.name, id),
            b.median_ns(),
            self.throughput,
        );
        self
    }

    pub fn finish(&mut self) {}
}

/// The top-level driver (a skeleton of real criterion's).
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 20 }
    }
}

impl Criterion {
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1);
        self
    }

    pub fn bench_function<F>(&mut self, id: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher::new(self.sample_size);
        f(&mut b);
        report(id, b.median_ns(), None);
        self
    }

    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let sample_size = self.sample_size;
        BenchmarkGroup {
            name: name.into(),
            throughput: None,
            sample_size,
            _parent: self,
        }
    }

    /// Called by `criterion_main!` after all groups have run.
    pub fn final_summary(&self) {}
}

/// `criterion_group!(name, target, ...)` — the simple form the workspace uses.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
            criterion.final_summary();
        }
    };
}

/// `criterion_main!(group, ...)` — emits `fn main` running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measures_something_positive() {
        let mut c = Criterion::default().sample_size(5);
        let mut g = c.benchmark_group("shim");
        g.throughput(Throughput::Elements(64));
        g.bench_function("sum", |b| b.iter(|| (0..64u64).sum::<u64>()));
        g.bench_function("batched", |b| {
            b.iter_batched(|| vec![1u64; 64], |v| v.iter().sum::<u64>(), BatchSize::SmallInput)
        });
        g.finish();
    }
}
