//! Offline stand-in for `criterion`, covering the slice this workspace's
//! benches use: `Criterion::bench_function` / `benchmark_group`,
//! `Bencher::iter` / `iter_batched`, `Throughput`, `BatchSize`, `black_box`,
//! and the `criterion_group!` / `criterion_main!` macros.
//!
//! It really measures: each benchmark is warmed up, then timed over
//! `ROUNDS` independent rounds of `sample_size` samples each, and the
//! minimum of the per-round medians is printed as
//!
//! ```text
//! bench group/name ... median 123.4 ns/iter (throughput 8.1 Melem/s)
//! ```
//!
//! Min-of-round-medians is the policy, pinned here rather than left to
//! chance: on a shared host, interference is one-sided (a preempted or
//! thermally-throttled window only ever reads *slower*), so the smallest
//! round median is the least-contaminated estimate of true cost.  A single
//! back-to-back sample run — what this shim did originally — let one noisy
//! window move the reported median by ±30% between otherwise identical
//! runs.  The policy is recorded next to every reported number (see
//! [`POLICY`]) so perf artifacts state how their medians were produced.
//!
//! There are no HTML reports, statistical regressions, or outlier analysis —
//! this exists so `cargo bench` runs offline and produces comparable
//! numbers; swap the workspace manifest to real criterion for publication
//! runs.

pub use std::hint::black_box;
use std::time::Instant;

/// Independent measurement rounds; the reported median is the minimum of
/// the per-round medians.
pub const ROUNDS: usize = 5;

/// Un-timed warm-up calls before the first round of a batched benchmark
/// (burst benchmarks warm up via their calibration loop instead).
pub const WARMUP_CALLS: usize = 3;

/// The pinned measurement policy, recorded in the medians file and the CI
/// perf artifact so a number can always be traced to how it was taken.
pub const POLICY: &str = "min-median:rounds=5,warmup=3";

/// How batched inputs are grouped. Only the variants the workspace names.
#[derive(Clone, Copy, Debug)]
pub enum BatchSize {
    SmallInput,
    LargeInput,
    PerIteration,
}

/// Units for reported throughput.
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    Elements(u64),
    Bytes(u64),
}

/// Runs the measured closures and records timing samples.
pub struct Bencher {
    /// Per-round medians (ns per iteration), one entry per round.
    round_medians: Vec<f64>,
    sample_size: usize,
}

/// Median of an unsorted sample buffer (mean of the middle two for even
/// counts — the upper-middle pick biases upward).
fn median_of(samples: &mut [f64]) -> f64 {
    samples.sort_by(|a, b| a.partial_cmp(b).expect("non-NaN timing"));
    let n = samples.len();
    if n % 2 == 1 {
        samples[n / 2]
    } else {
        (samples[n / 2 - 1] + samples[n / 2]) / 2.0
    }
}

impl Bencher {
    fn new(sample_size: usize) -> Self {
        Bencher {
            round_medians: Vec::new(),
            sample_size,
        }
    }

    /// Time `routine` repeatedly; one sample = a timed burst of calls.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up and burst-length calibration: grow until a burst takes
        // at least ~1ms or a cap is reached.
        let mut per_burst = 1u64;
        loop {
            let t = Instant::now();
            for _ in 0..per_burst {
                black_box(routine());
            }
            let ns = t.elapsed().as_nanos() as u64;
            if ns > 1_000_000 || per_burst >= 1 << 20 {
                break;
            }
            per_burst *= 2;
        }
        let mut samples = Vec::with_capacity(self.sample_size);
        for _ in 0..ROUNDS {
            samples.clear();
            for _ in 0..self.sample_size {
                let t = Instant::now();
                for _ in 0..per_burst {
                    black_box(routine());
                }
                samples.push(t.elapsed().as_nanos() as f64 / per_burst as f64);
            }
            self.round_medians.push(median_of(&mut samples));
        }
    }

    /// Time `routine` over fresh inputs from `setup`; setup time excluded.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        for _ in 0..WARMUP_CALLS {
            black_box(routine(setup()));
        }
        let mut samples = Vec::with_capacity(self.sample_size);
        for _ in 0..ROUNDS {
            samples.clear();
            for _ in 0..self.sample_size {
                let input = setup();
                let t = Instant::now();
                black_box(routine(input));
                samples.push(t.elapsed().as_nanos() as f64);
            }
            self.round_medians.push(median_of(&mut samples));
        }
    }

    /// Minimum of the per-round medians (see the module docs for why).
    fn median_ns(&self) -> f64 {
        self.round_medians
            .iter()
            .copied()
            .fold(f64::NAN, f64::min)
    }
}

fn report(name: &str, median_ns: f64, throughput: Option<Throughput>) {
    // Machine-readable hook for CI perf tracking: when
    // `CRITERION_MEDIANS_FILE` names a file, append one
    // `name<TAB>median_ns<TAB>elems<TAB>policy` line per benchmark (later
    // lines win on re-run).  `elems` is the per-iteration element count
    // when the bench declared `Throughput::Elements` (0 otherwise), so the
    // consumer can derive Melem/s; `policy` states how the median was
    // measured.  `prestage-bench`'s ci_grid folds the file into its
    // results/ci_grid.json artifact.
    if let Some(path) = std::env::var_os("CRITERION_MEDIANS_FILE") {
        use std::io::Write;
        if let Some(dir) = std::path::Path::new(&path).parent() {
            let _ = std::fs::create_dir_all(dir);
        }
        let elems = match throughput {
            Some(Throughput::Elements(n)) => n,
            _ => 0,
        };
        match std::fs::OpenOptions::new().create(true).append(true).open(&path) {
            Ok(mut f) => {
                let _ = writeln!(f, "{name}\t{median_ns}\t{elems}\t{POLICY}");
            }
            Err(e) => eprintln!("warning: cannot append to CRITERION_MEDIANS_FILE: {e}"),
        }
    }
    let human = if median_ns < 1_000.0 {
        format!("{median_ns:.1} ns/iter")
    } else if median_ns < 1_000_000.0 {
        format!("{:.2} us/iter", median_ns / 1_000.0)
    } else {
        format!("{:.2} ms/iter", median_ns / 1_000_000.0)
    };
    let tp = match throughput {
        Some(Throughput::Elements(n)) => {
            format!(" ({:.2} Melem/s)", n as f64 * 1_000.0 / median_ns)
        }
        Some(Throughput::Bytes(n)) => {
            format!(" ({:.2} MB/s)", n as f64 * 1_000.0 / median_ns)
        }
        None => String::new(),
    };
    println!("bench {name:<44} median {human}{tp}");
}

/// A named family of related benchmarks sharing throughput/sample settings.
pub struct BenchmarkGroup<'c> {
    name: String,
    throughput: Option<Throughput>,
    sample_size: usize,
    _parent: &'c mut Criterion,
}

impl BenchmarkGroup<'_> {
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    pub fn bench_function<F>(&mut self, id: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher::new(self.sample_size);
        f(&mut b);
        report(
            &format!("{}/{}", self.name, id),
            b.median_ns(),
            self.throughput,
        );
        self
    }

    pub fn finish(&mut self) {}
}

/// The top-level driver (a skeleton of real criterion's).
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 20 }
    }
}

impl Criterion {
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1);
        self
    }

    pub fn bench_function<F>(&mut self, id: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher::new(self.sample_size);
        f(&mut b);
        report(id, b.median_ns(), None);
        self
    }

    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let sample_size = self.sample_size;
        BenchmarkGroup {
            name: name.into(),
            throughput: None,
            sample_size,
            _parent: self,
        }
    }

    /// Called by `criterion_main!` after all groups have run.
    pub fn final_summary(&self) {}
}

/// `criterion_group!(name, target, ...)` — the simple form the workspace uses.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
            criterion.final_summary();
        }
    };
}

/// `criterion_main!(group, ...)` — emits `fn main` running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn min_of_round_medians_policy() {
        let mut s = vec![4.0, 1.0, 3.0, 2.0];
        assert_eq!(median_of(&mut s), 2.5);
        let mut s = vec![5.0, 1.0, 3.0];
        assert_eq!(median_of(&mut s), 3.0);

        let mut b = Bencher::new(4);
        b.iter_batched(|| (), |()| black_box(0u64), BatchSize::SmallInput);
        assert_eq!(b.round_medians.len(), ROUNDS);
        let m = b.median_ns();
        assert!(m.is_finite() && m >= 0.0);
        assert!(b.round_medians.iter().all(|&r| r >= m));
    }

    #[test]
    fn measures_something_positive() {
        let mut c = Criterion::default().sample_size(5);
        let mut g = c.benchmark_group("shim");
        g.throughput(Throughput::Elements(64));
        g.bench_function("sum", |b| b.iter(|| (0..64u64).sum::<u64>()));
        g.bench_function("batched", |b| {
            b.iter_batched(|| vec![1u64; 64], |v| v.iter().sum::<u64>(), BatchSize::SmallInput)
        });
        g.finish();
    }
}
