//! Offline stand-in for `proptest`, covering the slice this workspace's
//! property tests use: the `proptest!` macro over named-argument test
//! functions, range / tuple / `any::<bool>()` strategies,
//! `prop::collection::vec`, and `prop_assert!` / `prop_assert_eq!`.
//!
//! Semantics: each `proptest!` test body runs [`CASES`] times against
//! independently sampled inputs from a deterministic RNG (fixed seed, so CI
//! is reproducible). There is no shrinking — a failing case panics with the
//! ordinary assertion message. That is a weaker debugging experience than
//! real proptest but identical pass/fail power for the invariants tested
//! here.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::ops::Range;

/// Cases sampled per property. Override with `PROPTEST_CASES`.
pub const CASES: u32 = 96;

/// Resolve the per-property case count (`PROPTEST_CASES` env override).
pub fn cases() -> u32 {
    std::env::var("PROPTEST_CASES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(CASES)
        // 0 would make every property a green no-op; real proptest rejects it.
        .max(1)
}

/// The RNG handed to strategies.
pub struct TestRng(SmallRng);

impl TestRng {
    pub fn deterministic(salt: u64) -> Self {
        TestRng(SmallRng::seed_from_u64(0x5EED_CAFE ^ salt))
    }
}

/// A source of random values of one type (real proptest's `Strategy`,
/// minus shrinking).
pub trait Strategy {
    type Value;
    fn sample(&self, rng: &mut TestRng) -> Self::Value;
}

macro_rules! strategy_for_int_range {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                rng.0.gen_range(self.clone())
            }
        }
    )*};
}
strategy_for_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl<A: Strategy, B: Strategy> Strategy for (A, B) {
    type Value = (A::Value, B::Value);
    fn sample(&self, rng: &mut TestRng) -> Self::Value {
        (self.0.sample(rng), self.1.sample(rng))
    }
}

impl<A: Strategy, B: Strategy, C: Strategy> Strategy for (A, B, C) {
    type Value = (A::Value, B::Value, C::Value);
    fn sample(&self, rng: &mut TestRng) -> Self::Value {
        (self.0.sample(rng), self.1.sample(rng), self.2.sample(rng))
    }
}

/// `any::<T>()` — arbitrary value of `T`.
pub struct Any<T>(std::marker::PhantomData<T>);

pub fn any<T>() -> Any<T> {
    Any(std::marker::PhantomData)
}

impl Strategy for Any<bool> {
    type Value = bool;
    fn sample(&self, rng: &mut TestRng) -> bool {
        rng.0.gen()
    }
}

macro_rules! any_int {
    ($($t:ty),*) => {$(
        impl Strategy for Any<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                rng.0.gen()
            }
        }
    )*};
}
any_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Collection strategies (`prop::collection`).
pub mod collection {
    use super::{Strategy, TestRng};
    use rand::Rng;
    use std::ops::Range;

    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    /// `prop::collection::vec(element, len_range)`.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Self::Value {
            let len = rng.0.gen_range(self.size.clone());
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }
}

/// What `use proptest::prelude::*` is expected to bring in.
pub mod prelude {
    pub use crate::{any, prop_assert, prop_assert_eq, prop_assert_ne, proptest, Strategy};

    /// The `prop::` namespace (`prop::collection::vec`, ...).
    pub mod prop {
        pub use crate::collection;
    }
}

/// Run each contained `fn name(arg in strategy, ...) { .. }` as a `#[test]`
/// over [`cases`] sampled inputs.
#[macro_export]
macro_rules! proptest {
    ($($(#[$meta:meta])* fn $name:ident($($arg:pat in $strat:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let mut __rng = $crate::TestRng::deterministic(
                    stringify!($name).bytes().fold(0u64, |h, b| {
                        h.wrapping_mul(31).wrapping_add(b as u64)
                    }),
                );
                for __case in 0..$crate::cases() {
                    let _ = __case;
                    $(let $arg = $crate::Strategy::sample(&($strat), &mut __rng);)+
                    $body
                }
            }
        )*
    };
}

/// `prop_assert!` — plain `assert!` (no shrinking to report back to).
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// `prop_assert_eq!` — plain `assert_eq!`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// `prop_assert_ne!` — plain `assert_ne!`.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #[test]
        fn ranges_and_tuples(v in prop::collection::vec((0u64..64, any::<bool>()), 1..40)) {
            prop_assert!(!v.is_empty() && v.len() < 40);
            for (x, _b) in v {
                prop_assert!(x < 64);
            }
        }

        #[test]
        fn two_args(base in 0u64..1000, assoc in 1usize..8) {
            prop_assert!(base < 1000);
            prop_assert!((1..8).contains(&assoc));
        }
    }
}
