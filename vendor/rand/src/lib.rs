//! Offline stand-in for `rand` 0.8, covering the slice of the API this
//! workspace uses: `rngs::SmallRng`, `SeedableRng::seed_from_u64`, and the
//! `Rng` extension methods `gen`, `gen_range`, and `gen_bool`.
//!
//! `SmallRng` is the same algorithm the real crate uses on 64-bit targets —
//! xoshiro256++ seeded through SplitMix64 — so workloads generated here are
//! statistically equivalent to (though not bit-identical with) what the real
//! dependency would produce. Integer `gen_range` uses a simple modulo
//! reduction; the bias is immaterial at the span sizes the generators use.

use std::ops::{Range, RangeInclusive};

/// A source of random 64-bit words.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Seedable construction, matching `rand::SeedableRng::seed_from_u64`.
pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}

/// Named RNGs, matching `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// xoshiro256++ (what real `rand` backs `SmallRng` with on 64-bit).
    #[derive(Clone, Debug)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 state expansion, per the xoshiro authors'
            // recommendation for seeding from a single word.
            let mut x = seed;
            let mut next = || {
                x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            SmallRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            let out = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            out
        }
    }
}

/// Types `gen()` can produce (the `Standard` distribution, inlined).
pub trait Standard: Sized {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

/// Ranges `gen_range()` accepts.
pub trait SampleRange<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                (self.start as i128 + (rng.next_u64() as u128 % span) as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                (lo as i128 + (rng.next_u64() as u128 % span) as i128) as $t
            }
        }
    )*};
}
range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! range_float {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                self.start + <$t as Standard>::sample(rng) * (self.end - self.start)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty range");
                lo + <$t as Standard>::sample(rng) * (hi - lo)
            }
        }
    )*};
}
range_float!(f32, f64);

/// The user-facing extension trait, matching `rand::Rng`.
pub trait Rng: RngCore {
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p outside [0, 1]");
        <f64 as Standard>::sample(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_and_in_range() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..1000 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        use super::RngCore;
        let mut r = SmallRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let x: f64 = r.gen();
            assert!((0.0..1.0).contains(&x));
            let n = r.gen_range(3..=8u8);
            assert!((3..=8).contains(&n));
            let m = r.gen_range(25..31);
            assert!((25..31).contains(&m));
        }
    }

    #[test]
    fn seeds_diverge() {
        let mut a = SmallRng::seed_from_u64(1);
        let mut b = SmallRng::seed_from_u64(2);
        use super::RngCore;
        assert_ne!(
            (0..8).map(|_| a.next_u64()).collect::<Vec<_>>(),
            (0..8).map(|_| b.next_u64()).collect::<Vec<_>>()
        );
    }
}
