//! Offline stand-in for `serde`.
//!
//! Exposes the `Serialize` / `Deserialize` trait names and the matching
//! derive macros so the workspace's annotations compile without network
//! access. The traits are blanket-implemented: any `T: Serialize` bound is
//! trivially satisfied, and the derives (from the sibling `serde_derive`
//! shim) expand to nothing. Swapping in the real serde is a one-line change
//! in the workspace manifest and requires no source edits.

pub use serde_derive::{Deserialize, Serialize};

/// Marker trait matching `serde::Serialize`'s name and position.
pub trait Serialize {}
impl<T: ?Sized> Serialize for T {}

/// Marker trait matching `serde::Deserialize`'s name and position.
pub trait Deserialize<'de> {}
impl<'de, T: ?Sized> Deserialize<'de> for T {}

/// Marker trait matching `serde::de::DeserializeOwned`.
pub mod de {
    pub trait DeserializeOwned {}
    impl<T: ?Sized> DeserializeOwned for T {}
}
