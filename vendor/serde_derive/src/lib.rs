//! Offline stand-in for `serde_derive`.
//!
//! The build environment has no network access to crates.io, and nothing in
//! this workspace actually serialises: the `#[derive(Serialize, Deserialize)]`
//! annotations exist so downstream tooling (sweep persistence, trace dumps)
//! can be added without re-annotating every type. Until a real serde is
//! available the derives expand to nothing; the traits in the sibling
//! `serde` shim are blanket-implemented so bounds keep compiling.

use proc_macro::TokenStream;

/// No-op `#[derive(Serialize)]`. Accepts (and ignores) `#[serde(...)]`.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// No-op `#[derive(Deserialize)]`. Accepts (and ignores) `#[serde(...)]`.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
